"""Online-learning correction of frozen selectivity estimates.

Per "Selectivity Estimation for Linear Queries via Online Learning"
(PAPERS.md): instead of waiting for the next ANALYZE, learn from the
workload itself.  :class:`OnlineLearningEstimator` wraps any frozen
base estimator and maintains a signed **residual mass distribution**
over a fixed grid — the learned difference between the base model's
density and the density the observed true selectivities imply.  Every
``observe(a, b, true_selectivity)`` call moves a fraction of the
observed error's mass into the query range and takes it back out of
the complement, so the total residual stays zero and corrected
estimates remain a (clipped) probability.

The correction layer is deliberately separate from the base model:

* the base estimator stays frozen-after-build (the repo-wide
  invariant; see the ``summary-mutability`` analysis rule), while this
  wrapper owns the mutable learned state — like
  :class:`repro.feedback.adaptive.AdaptiveHistogram` it is a feedback
  model, not a member of the estimator hierarchy;
* when the catalog re-freezes statistics (an incremental refresh
  swaps in a new base estimator), :meth:`rebind` carries the learned
  residuals across the swap — the workload knowledge survives summary
  re-freezes, decayed by ``rebind_decay`` because the new base
  already absorbed some of what the residuals were correcting.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import (
    InvalidQueryError,
    InvalidSampleError,
    validate_query,
    validate_query_batch,
)
from repro.data.domain import Interval
from repro.telemetry.quality import record_quality
from repro.telemetry.runtime import get_telemetry

__all__ = ["OnlineLearningEstimator"]


class OnlineLearningEstimator:
    """Feedback-corrected wrapper around a frozen selectivity estimator.

    Parameters
    ----------
    base:
        Any object with ``selectivities(a, b)`` (every estimator in
        :mod:`repro.estimators` qualifies).
    domain:
        Attribute domain the correction grid spans.
    bins:
        Correction grid resolution.
    learning_rate:
        Fraction of each observed error corrected per observation
        (multiplied in; 1.0 would trust a single observation fully).
    rebind_decay:
        Residual retention factor applied by :meth:`rebind` when a
        refreshed base estimator is swapped in.
    """

    def __init__(
        self,
        base: object,
        domain: Interval,
        *,
        bins: int = 64,
        learning_rate: float = 0.3,
        rebind_decay: float = 0.5,
    ) -> None:
        if bins < 2:
            raise InvalidSampleError(f"correction grid needs >= 2 bins, got {bins}")
        if not 0.0 < learning_rate <= 1.0:
            raise InvalidSampleError(
                f"learning rate must be in (0, 1], got {learning_rate}"
            )
        if not 0.0 <= rebind_decay <= 1.0:
            raise InvalidSampleError(
                f"rebind decay must be in [0, 1], got {rebind_decay}"
            )
        self._base = base
        self._domain = domain
        self._edges = np.linspace(domain.low, domain.high, bins + 1)
        self._widths = np.diff(self._edges)
        self._residual = np.zeros(bins, dtype=np.float64)
        self._rate = float(learning_rate)
        self._decay = float(rebind_decay)
        self._observations = 0
        self._rebinds = 0

    @property
    def base(self) -> object:
        """The wrapped frozen estimator."""
        return self._base

    @property
    def domain(self) -> Interval:
        """Attribute domain of the correction grid."""
        return self._domain

    @property
    def observations(self) -> int:
        """Feedback observations absorbed so far."""
        return self._observations

    @property
    def rebinds(self) -> int:
        """Base-estimator swaps survived so far."""
        return self._rebinds

    @property
    def correction_mass(self) -> float:
        """Total variation of the learned residual (0 = no correction)."""
        return 0.5 * float(np.abs(self._residual).sum())

    def _overlap(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Fraction of each grid cell covered by each query (Q x bins)."""
        lo = np.maximum(a[:, None], self._edges[:-1][None, :])
        hi = np.minimum(b[:, None], self._edges[1:][None, :])
        return np.clip(hi - lo, 0.0, None) / self._widths[None, :]

    def selectivity(self, a: float, b: float) -> float:
        """Corrected selectivity of one range query."""
        a, b = validate_query(a, b)
        return float(self.selectivities(np.array([a]), np.array([b]))[0])

    def selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Corrected selectivities for a query batch."""
        a, b = validate_query_batch(a, b)
        base = np.asarray(self._base.selectivities(a, b), dtype=np.float64)
        correction = self._overlap(a, b) @ self._residual
        return np.clip(base + correction, 0.0, 1.0)

    def observe(self, a: float, b: float, true_selectivity: float) -> float:
        """Absorb one observed true selectivity; returns the prior error.

        The signed error between the corrected estimate and the truth
        is partially (``learning_rate``) converted into residual mass:
        added inside the query range proportionally to coverage,
        removed from the complement proportionally to its width, so
        the residual distribution keeps zero total mass.
        """
        a, b = validate_query(a, b)
        if not 0.0 <= true_selectivity <= 1.0:
            raise InvalidQueryError(
                f"true selectivity must be in [0, 1], got {true_selectivity}"
            )
        estimate = self.selectivity(a, b)
        record_quality(estimate, true_selectivity, key=type(self).__name__)
        error = true_selectivity - estimate
        coverage = self._overlap(np.array([a]), np.array([b]))[0]
        covered_len = coverage * self._widths
        uncovered_len = (1.0 - coverage) * self._widths
        covered = float(covered_len.sum())
        uncovered = float(uncovered_len.sum())
        shift = self._rate * error
        if covered > 0.0:
            self._residual += shift * covered_len / covered
            if uncovered > 0.0:
                self._residual -= shift * uncovered_len / uncovered
        self._observations += 1
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.inc("online.feedback")
            telemetry.metrics.set_gauge(
                "online.learning.correction", self.correction_mass
            )
        return error

    def rebind(self, base: object) -> None:
        """Swap in a refreshed base estimator, keeping learned state.

        Called after the catalog re-freezes statistics: the new base
        already reflects the mutated data, so the residuals are decayed
        by ``rebind_decay`` rather than kept at full strength (or
        dropped entirely, which would forget the workload).
        """
        self._base = base
        self._residual *= self._decay
        self._rebinds += 1
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.inc("online.rebind")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OnlineLearningEstimator(base={type(self._base).__name__}, "
            f"observations={self._observations}, rebinds={self._rebinds})"
        )
