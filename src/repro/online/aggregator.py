"""Online aggregation: progressive answers with confidence intervals.

Hellerstein, Haas & Wang (1997) — cited by the paper as the place
approximate answers matter most — process an aggregate query by
scanning the relation in *random order* and continuously publishing a
running estimate plus a confidence interval that shrinks as the scan
proceeds.

:class:`OnlineAggregator` is that substrate for COUNT/selectivity over
range predicates.  :class:`OnlineKernelSelectivity` plugs the paper's
kernel estimator into the stream: every batch re-smooths the running
sample with a freshly selected bandwidth, so the density estimate (and
any selectivity read from it) improves at the kernel rate ``n^(-4/5)``
rather than the sampling rate ``n^(-1/2)`` — exactly the combination
the paper's §6 proposes to study.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy.special import ndtri

from repro.bandwidth.scale import clamp_bandwidth
from repro.core.base import InvalidQueryError, InvalidSampleError, validate_query
from repro.telemetry import get_telemetry
from repro.core.kernel.estimator import KernelSelectivityEstimator
from repro.data.domain import Interval
from repro.data.relation import Relation, resolve_rng


@dataclasses.dataclass(frozen=True)
class OnlineAggregate:
    """A running aggregate answer.

    Attributes
    ----------
    estimate:
        Current estimate of the aggregate (selectivity in ``[0, 1]``).
    half_width:
        Half-width of the confidence interval at the requested level.
    records_seen:
        Number of records consumed so far.
    fraction_scanned:
        ``records_seen / N``.
    """

    estimate: float
    half_width: float
    records_seen: int
    fraction_scanned: float

    @property
    def interval(self) -> tuple[float, float]:
        """The confidence interval, clipped to ``[0, 1]``."""
        return (
            max(0.0, self.estimate - self.half_width),
            min(1.0, self.estimate + self.half_width),
        )


class OnlineAggregator:
    """Stream a relation in random order; answer COUNT ranges online.

    Parameters
    ----------
    relation:
        The relation to scan.
    seed:
        Seed of the random scan order.
    confidence:
        Two-sided confidence level of the reported intervals.
    """

    def __init__(
        self,
        relation: Relation,
        seed: "int | np.random.Generator | None" = None,
        confidence: float = 0.95,
    ) -> None:
        if not 0.5 < confidence < 1.0:
            raise InvalidQueryError(f"confidence must be in (0.5, 1), got {confidence}")
        rng = resolve_rng(seed)
        self._order = rng.permutation(relation.size)
        self._relation = relation
        self._cursor = 0
        self._z = float(ndtri(0.5 + confidence / 2.0))
        self._seen = np.empty(0, dtype=np.float64)

    @property
    def records_seen(self) -> int:
        """Records consumed so far."""
        return self._cursor

    @property
    def exhausted(self) -> bool:
        """Whether the scan has consumed the whole relation."""
        return self._cursor >= self._relation.size

    @property
    def seen(self) -> np.ndarray:
        """The streamed records so far (random prefix of the relation)."""
        return self._seen

    def advance(self, batch: int = 1_000) -> int:
        """Consume up to ``batch`` more records; returns how many.

        Traced runs count each non-empty batch (``online.batch``) and
        record the per-batch record count and cumulative scan fraction
        — the progress curve online aggregation is about.
        """
        if batch <= 0:
            raise InvalidQueryError(f"batch must be positive, got {batch}")
        end = min(self._cursor + batch, self._relation.size)
        taken = end - self._cursor
        if taken:
            index = self._order[self._cursor : end]
            new = self._relation.values[index]
            self._seen = np.concatenate([self._seen, new])
            self._cursor = end
            telemetry = get_telemetry()
            if telemetry.enabled:
                telemetry.metrics.inc("online.batch")
                telemetry.metrics.inc("online.records", taken)
                telemetry.metrics.observe("online.batch.records", taken)
                telemetry.metrics.observe(
                    "online.scan.fraction", self._cursor / self._relation.size
                )
        return taken

    def estimate(self, a: float, b: float) -> OnlineAggregate:
        """Current selectivity estimate of ``Q(a, b)`` with its CI.

        The estimator is the sample fraction of the scanned prefix;
        the interval is the CLT binomial interval with finite
        population correction (the scan is without replacement, so the
        interval collapses to zero as the scan completes).
        """
        a, b = validate_query(a, b)
        n = self._cursor
        if n == 0:
            raise InvalidQueryError("no records scanned yet; call advance() first")
        inside = float(np.count_nonzero((self._seen >= a) & (self._seen <= b)))
        p = inside / n
        big_n = self._relation.size
        fpc = max(0.0, (big_n - n) / max(big_n - 1, 1))
        half = self._z * np.sqrt(p * (1.0 - p) / n * fpc)
        return OnlineAggregate(p, float(half), n, n / big_n)

    def run_until(
        self,
        a: float,
        b: float,
        target_half_width: float,
        batch: int = 1_000,
    ) -> OnlineAggregate:
        """Advance until the interval is tighter than the target."""
        if target_half_width <= 0:
            raise InvalidQueryError(
                f"target half-width must be positive, got {target_half_width}"
            )
        if self._cursor == 0:
            self.advance(batch)
        current = self.estimate(a, b)
        while current.half_width > target_half_width and not self.exhausted:
            self.advance(batch)
            current = self.estimate(a, b)
        return current


class OnlineKernelSelectivity:
    """A kernel selectivity estimate that refines as records stream in.

    Wraps an :class:`OnlineAggregator`; after every consumed batch the
    kernel estimator is rebuilt over the scanned prefix with a freshly
    selected normal-scale bandwidth (which shrinks as ``n^(-1/5)``),
    so smoothing always matches the current sample size.
    """

    def __init__(
        self,
        relation: Relation,
        seed: "int | np.random.Generator | None" = None,
        batch: int = 500,
    ) -> None:
        if batch <= 0:
            raise InvalidSampleError(f"batch must be positive, got {batch}")
        self._stream = OnlineAggregator(relation, seed)
        self._domain: Interval = relation.domain
        self._batch = batch
        self._estimator: KernelSelectivityEstimator | None = None

    @property
    def records_seen(self) -> int:
        """Records consumed so far."""
        return self._stream.records_seen

    @property
    def bandwidth(self) -> float | None:
        """Current bandwidth (``None`` before the first batch)."""
        return self._estimator.bandwidth if self._estimator else None

    def advance(self, batches: int = 1) -> None:
        """Consume more of the stream and re-smooth."""
        from repro.bandwidth.normal_scale import kernel_bandwidth
        from repro.core.kernel.boundary import ReflectionKernelEstimator

        for _ in range(batches):
            if not self._stream.advance(self._batch):
                break
        seen = self._stream.seen
        if seen.size >= 2:
            telemetry = get_telemetry()
            try:
                with telemetry.span("online.resmooth", records=str(seen.size)):
                    h = clamp_bandwidth(kernel_bandwidth(seen), self._domain.width)
                    self._estimator = ReflectionKernelEstimator(seen, h, self._domain)
            except InvalidSampleError:
                self._estimator = None
            else:
                if telemetry.enabled:
                    telemetry.metrics.inc("online.resmooth")
                    telemetry.metrics.observe("online.bandwidth", h)

    def selectivity(self, a: float, b: float) -> float:
        """Current kernel selectivity estimate of ``Q(a, b)``."""
        if self._estimator is None:
            raise InvalidQueryError("no records scanned yet; call advance() first")
        return self._estimator.selectivity(a, b)

    def estimate(self, a: float, b: float) -> OnlineAggregate:
        """Kernel estimate wrapped with the stream's sampling CI.

        The interval is the (conservative) binomial interval of the
        underlying scan; the kernel point estimate typically sits far
        inside it.
        """
        sampling = self._stream.estimate(a, b)
        return OnlineAggregate(
            self.selectivity(a, b),
            sampling.half_width,
            sampling.records_seen,
            sampling.fraction_scanned,
        )
