"""Online aggregation (paper §6 future work; Hellerstein et al. 1997).

The paper's second future-work item: "we currently investigate how to
apply kernel estimators to online processing of aggregate queries".
This package implements that pipeline:

* :mod:`repro.online.aggregator` — the online-aggregation substrate:
  stream a relation in random order, maintain running estimates with
  CLT confidence intervals, stop when the interval is tight enough.
* The :class:`~repro.online.aggregator.OnlineKernelSelectivity`
  estimator refines a kernel selectivity estimate (bandwidth and all)
  as records stream in — the kernel-meets-online-aggregation study the
  paper announces.
* :mod:`repro.online.learning` — the online-learning correction layer:
  :class:`~repro.online.learning.OnlineLearningEstimator` wraps a
  frozen estimator and learns a residual mass distribution from
  observed true selectivities, surviving statistics re-freezes via
  ``rebind`` (see docs/STREAMING.md).
"""

from repro.online.aggregator import (
    OnlineAggregate,
    OnlineAggregator,
    OnlineKernelSelectivity,
)
from repro.online.learning import OnlineLearningEstimator

__all__ = [
    "OnlineAggregate",
    "OnlineAggregator",
    "OnlineKernelSelectivity",
    "OnlineLearningEstimator",
]
