"""Empirical MISE: integrated squared error against a known truth.

With the exact densities of :mod:`repro.evaluation.truth` the paper's
theoretical quantities become measurable:

* :func:`integrated_squared_error` — ``ISE = int (f_hat - f)^2`` of
  one fitted estimator, on a grid.
* :func:`estimate_mise` — Monte-Carlo average of the ISE over
  independent samples: the MISE of eq. (3).
* :func:`mise_over_sample_sizes` / :func:`fit_rate` — measure the
  convergence *rate*: the paper claims ``n^(-2/3)`` for equi-width
  histograms and ``n^(-4/5)`` for kernel estimators; fitting a line in
  log-log space recovers the exponent.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.base import DensityEstimator, InvalidQueryError
from repro.evaluation.truth import TruncatedDensity


def integrated_squared_error(
    estimator: DensityEstimator,
    truth: TruncatedDensity,
    grid_points: int = 2_048,
) -> float:
    """ISE of a fitted density estimator against the exact density."""
    if grid_points < 8:
        raise InvalidQueryError(f"need at least 8 grid points, got {grid_points}")
    domain = truth.domain
    grid = np.linspace(domain.low, domain.high, grid_points)
    residual = estimator.density(grid) - truth.pdf(grid)
    return float(np.trapezoid(residual * residual, grid))


def estimate_mise(
    build: Callable[[np.ndarray], DensityEstimator],
    truth: TruncatedDensity,
    sample_size: int,
    replications: int = 20,
    seed: int = 0,
    grid_points: int = 2_048,
) -> float:
    """Monte-Carlo MISE: mean ISE over independent samples (eq. 3)."""
    if replications < 1:
        raise InvalidQueryError(f"need at least one replication, got {replications}")
    rng = np.random.default_rng(seed)
    errors = []
    for _ in range(replications):
        sample = truth.sample(sample_size, rng)
        estimator = build(sample)
        errors.append(integrated_squared_error(estimator, truth, grid_points))
    return float(np.mean(errors))


def mise_over_sample_sizes(
    build: Callable[[np.ndarray], DensityEstimator],
    truth: TruncatedDensity,
    sample_sizes: Sequence[int],
    replications: int = 20,
    seed: int = 0,
    grid_points: int = 2_048,
) -> list[tuple[int, float]]:
    """MISE measured at several sample sizes, for rate fitting."""
    return [
        (int(n), estimate_mise(build, truth, int(n), replications, seed + i, grid_points))
        for i, n in enumerate(sample_sizes)
    ]


def fit_rate(points: Sequence[tuple[int, float]]) -> float:
    """Least-squares slope of ``log MISE`` against ``log n``.

    A histogram at its optimal bin width should return ≈ -2/3; a
    kernel estimator at its optimal bandwidth ≈ -4/5 (paper §§4.1-4.2).
    """
    if len(points) < 2:
        raise InvalidQueryError("rate fitting needs at least two (n, MISE) points")
    n = np.log([p[0] for p in points])
    e = np.log([p[1] for p in points])
    slope, _ = np.polyfit(n, e, 1)
    return float(slope)
