"""Exact reference densities for the synthetic data models.

The synthetic files of §5.1.1 are draws from known continuous
distributions truncated to the attribute domain.  Knowing the truth
exactly lets tests and theory experiments compute genuine integrated
squared errors, bias/variance splits and roughness functionals instead
of comparing estimators only against each other.
"""

from __future__ import annotations

import abc

import numpy as np
from scipy import stats

from repro.core.base import InvalidQueryError
from repro.data.domain import Interval


class TruncatedDensity(abc.ABC):
    """A continuous density truncated (and renormalized) to a domain."""

    def __init__(self, domain: Interval) -> None:
        self._domain = domain
        self._mass = self._raw_cdf(domain.high) - self._raw_cdf(domain.low)
        if self._mass <= 0:
            raise InvalidQueryError("distribution has no mass inside the domain")

    @property
    def domain(self) -> Interval:
        """The truncation interval."""
        return self._domain

    @abc.abstractmethod
    def _raw_pdf(self, x: np.ndarray) -> np.ndarray:
        """Untruncated density."""

    @abc.abstractmethod
    def _raw_cdf(self, x: np.ndarray) -> np.ndarray:
        """Untruncated CDF."""

    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Truncated density (zero outside the domain)."""
        x = np.asarray(x, dtype=np.float64)
        inside = (x >= self._domain.low) & (x <= self._domain.high)
        return np.where(inside, self._raw_pdf(x) / self._mass, 0.0)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        """Truncated CDF."""
        x = np.asarray(x, dtype=np.float64)
        clipped = np.clip(x, self._domain.low, self._domain.high)
        return (self._raw_cdf(clipped) - self._raw_cdf(self._domain.low)) / self._mass

    def selectivity(self, a: float, b: float) -> float:
        """Exact distribution selectivity of ``Q(a, b)``."""
        if a > b:
            raise InvalidQueryError(f"query range is empty: a={a} > b={b}")
        return float(self.cdf(b) - self.cdf(a))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw from the truncated distribution by inverse CDF."""
        u = rng.uniform(0.0, 1.0, size=n)
        target = self._raw_cdf(self._domain.low) + u * self._mass
        return self._raw_ppf(target)

    @abc.abstractmethod
    def _raw_ppf(self, q: np.ndarray) -> np.ndarray:
        """Untruncated quantile function."""


class NormalTruth(TruncatedDensity):
    """Normal(mean, sigma) truncated to the domain — the ``n(p)`` model."""

    def __init__(self, domain: Interval, mean: float | None = None, sigma: float | None = None) -> None:
        self._mean = domain.center if mean is None else float(mean)
        # Default: the library's anchored sigma (1/8 of the p=20 width).
        if sigma is None:
            from repro.data.synthetic import NORMAL_SIGMA_FRACTION, _REFERENCE_WIDTH

            sigma = NORMAL_SIGMA_FRACTION * _REFERENCE_WIDTH
        self._sigma = float(sigma)
        super().__init__(domain)

    def _raw_pdf(self, x: np.ndarray) -> np.ndarray:
        return stats.norm.pdf(x, self._mean, self._sigma)

    def _raw_cdf(self, x: np.ndarray) -> np.ndarray:
        return stats.norm.cdf(x, self._mean, self._sigma)

    def _raw_ppf(self, q: np.ndarray) -> np.ndarray:
        return stats.norm.ppf(q, self._mean, self._sigma)


class ExponentialTruth(TruncatedDensity):
    """Exponential(scale) truncated to the domain — the ``e(p)`` model."""

    def __init__(self, domain: Interval, scale: float | None = None) -> None:
        if scale is None:
            from repro.data.synthetic import EXPONENTIAL_SCALE_FRACTION, _REFERENCE_WIDTH

            scale = EXPONENTIAL_SCALE_FRACTION * _REFERENCE_WIDTH
        self._scale = float(scale)
        super().__init__(domain)

    def _raw_pdf(self, x: np.ndarray) -> np.ndarray:
        return stats.expon.pdf(x, scale=self._scale)

    def _raw_cdf(self, x: np.ndarray) -> np.ndarray:
        return stats.expon.cdf(x, scale=self._scale)

    def _raw_ppf(self, q: np.ndarray) -> np.ndarray:
        return stats.expon.ppf(q, scale=self._scale)


class UniformTruth(TruncatedDensity):
    """Uniform over the domain — the ``u(p)`` model."""

    def _raw_pdf(self, x: np.ndarray) -> np.ndarray:
        return stats.uniform.pdf(x, self._domain.low, self._domain.width)

    def _raw_cdf(self, x: np.ndarray) -> np.ndarray:
        return stats.uniform.cdf(x, self._domain.low, self._domain.width)

    def _raw_ppf(self, q: np.ndarray) -> np.ndarray:
        return stats.uniform.ppf(q, self._domain.low, self._domain.width)
