"""Empirical verification of the paper's §4 theory.

The AMISE analysis predicts error *rates*: histogram MISE falls as
``n^(-2/3)``, kernel MISE as ``n^(-4/5)``, and the optimal smoothing
parameters follow the closed forms of eqs. (7) and (9).  This package
makes those claims checkable:

* :mod:`repro.evaluation.truth` — exact densities/CDFs of the
  continuous models behind the synthetic data files.
* :mod:`repro.evaluation.mise` — integrated squared error of a fitted
  density estimator against a truth, Monte-Carlo MISE over
  replications, and log-log rate fitting.
"""

from repro.evaluation.decomposition import Decomposition, decompose, tradeoff_curve
from repro.evaluation.mise import (
    estimate_mise,
    fit_rate,
    integrated_squared_error,
    mise_over_sample_sizes,
)
from repro.evaluation.truth import (
    ExponentialTruth,
    NormalTruth,
    TruncatedDensity,
    UniformTruth,
)

__all__ = [
    "Decomposition",
    "ExponentialTruth",
    "NormalTruth",
    "TruncatedDensity",
    "UniformTruth",
    "decompose",
    "estimate_mise",
    "tradeoff_curve",
    "fit_rate",
    "integrated_squared_error",
    "mise_over_sample_sizes",
]
