"""Monte-Carlo bias-variance decomposition of density estimators.

Paper eq. (3) splits the MISE into integrated variance and integrated
squared bias; §4.2 then shows their *complementary* dependence on the
smoothing parameter — small ``h``: low bias / high variance, large
``h``: the reverse — which is why an optimal ``h`` exists at all.
This module measures both components directly:

* build the estimator on many independent samples,
* the pointwise mean of the replicated densities minus the truth is
  the bias; the pointwise spread is the variance,
* integrate both over the domain.

``decompose`` returns the empirical ``(IVar, IBias^2, MISE)`` triple
so experiments (and tests) can verify the paper's trade-off curve and
compare it against the closed-form AMISE terms.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

import numpy as np

from repro.core.base import DensityEstimator, InvalidQueryError
from repro.evaluation.truth import TruncatedDensity


@dataclasses.dataclass(frozen=True)
class Decomposition:
    """Empirical error decomposition of one estimator configuration."""

    integrated_variance: float
    integrated_squared_bias: float

    @property
    def mise(self) -> float:
        """``MISE = IVar + IBias^2`` (paper eq. 3)."""
        return self.integrated_variance + self.integrated_squared_bias


def decompose(
    build: Callable[[np.ndarray], DensityEstimator],
    truth: TruncatedDensity,
    sample_size: int,
    replications: int = 30,
    seed: int = 0,
    grid_points: int = 1_024,
) -> Decomposition:
    """Measure integrated variance and squared bias by replication."""
    if replications < 2:
        raise InvalidQueryError(f"need at least two replications, got {replications}")
    if grid_points < 8:
        raise InvalidQueryError(f"need at least 8 grid points, got {grid_points}")
    rng = np.random.default_rng(seed)
    domain = truth.domain
    grid = np.linspace(domain.low, domain.high, grid_points)
    densities = np.empty((replications, grid_points), dtype=np.float64)
    for r in range(replications):
        sample = truth.sample(sample_size, rng)
        densities[r] = build(sample).density(grid)
    mean = densities.mean(axis=0)
    variance = densities.var(axis=0, ddof=1)
    bias_sq = (mean - truth.pdf(grid)) ** 2
    return Decomposition(
        integrated_variance=float(np.trapezoid(variance, grid)),
        integrated_squared_bias=float(np.trapezoid(bias_sq, grid)),
    )


def tradeoff_curve(
    build_at: Callable[[np.ndarray, float], DensityEstimator],
    truth: TruncatedDensity,
    smoothing_values: Sequence[float],
    sample_size: int,
    replications: int = 30,
    seed: int = 0,
    grid_points: int = 1_024,
) -> list[tuple[float, Decomposition]]:
    """Decomposition at several smoothing parameters.

    ``build_at(sample, h)`` builds the estimator with smoothing ``h``.
    Returns ``(h, decomposition)`` pairs — the material of the paper's
    bias/variance discussion in §4.2.
    """
    return [
        (
            float(h),
            decompose(
                lambda sample, _h=float(h): build_at(sample, _h),
                truth,
                sample_size,
                replications,
                seed,
                grid_points,
            ),
        )
        for h in smoothing_values
    ]
