"""Reproduction of Blohsfeld, Korus & Seeger (SIGMOD 1999).

``repro`` implements every estimator, selection rule, data set and
experiment from *"A Comparison of Selectivity Estimators for Range
Queries on Metric Attributes"*:

* pure sampling, equi-width / equi-depth / max-diff / uniform histograms
  and the average shifted histogram (:mod:`repro.core.histogram`),
* kernel selectivity estimation with boundary treatments
  (:mod:`repro.core.kernel`),
* the hybrid histogram-kernel estimator (:mod:`repro.core.hybrid`),
* smoothing-parameter selection: normal-scale rules, direct plug-in and
  workload oracles (:mod:`repro.bandwidth`),
* the paper's data files (synthetic and simulated real data,
  :mod:`repro.data`), query workloads and error metrics
  (:mod:`repro.workload`), and
* one experiment module per figure of the paper
  (:mod:`repro.experiments`).

Quickstart
----------

>>> import numpy as np
>>> from repro import datasets, estimators
>>> relation = datasets.load("n(20)", seed=7)
>>> sample = relation.sample(2000, seed=11)
>>> est = estimators.kernel(sample, relation.domain)
>>> width = 0.01 * relation.domain.width
>>> center = relation.domain.center
>>> sel = est.selectivity(center - width / 2, center + width / 2)
>>> abs(sel * relation.size - relation.count(center - width / 2,
...                                          center + width / 2)) < 2000
True
"""

from repro import estimators
from repro._version import __version__
from repro.core.base import (
    DensityEstimator,
    EstimatorError,
    InvalidQueryError,
    InvalidSampleError,
    SelectivityEstimator,
)
from repro.data import registry as datasets
from repro.data.domain import IntegerDomain, Interval
from repro.data.relation import Relation
from repro.workload.queries import QueryFile, RangeQuery

__all__ = [
    "DensityEstimator",
    "EstimatorError",
    "IntegerDomain",
    "Interval",
    "InvalidQueryError",
    "InvalidSampleError",
    "QueryFile",
    "RangeQuery",
    "Relation",
    "SelectivityEstimator",
    "__version__",
    "datasets",
    "estimators",
]
