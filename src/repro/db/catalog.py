"""The statistics catalog: ANALYZE and cached per-column estimators.

A real system separates statistics *collection* (ANALYZE scans a
sample once) from *use* (the optimizer consults cached statistics on
every query).  :class:`Catalog` does the same: ``analyze(table)``
draws one row-aligned sample and builds a selectivity estimator per
column — any family from :mod:`repro.estimators` — plus optional
joint 2-D statistics for declared column pairs.

ANALYZE is **delta-aware**: alongside the estimators it maintains one
mergeable :class:`~repro.core.summary.ColumnSummary` per column.
:meth:`Catalog.refresh` replays the table's mutation deltas into those
summaries (appends become partial summaries merged in, deletes are
subtracted), re-freezes, and rebuilds the estimators from the frozen
summaries — O(delta + reservoir) instead of the O(n) rescan — falling
back to a full rebuild once the changed-row fraction exceeds the
staleness budget, the delta log was compacted, deletions outran the
reservoir, or joint statistics are involved.
:meth:`Catalog.maintain` drives the policy: the drift monitor's KS
readings and the table's statistics-version lag decide which tables
get refreshed, so only drifted tables pay for a rebuild.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro import estimators
from repro.core.base import InvalidQueryError, InvalidSampleError, SelectivityEstimator
from repro.core.summary import ColumnSummary, FrozenSummary
from repro.db.cache import MISS, LRUCache
from repro.db.table import StaleDeltaLog, Table
from repro.multidim import KernelEstimator2D, plugin_bandwidths_2d
from repro.telemetry.drift import DriftMonitor, DriftReading, Staleness, StalenessMonitor
from repro.telemetry.runtime import get_telemetry

#: Estimator families ANALYZE can build, by name.
FAMILIES = {
    "uniform": lambda sample, domain: estimators.uniform(domain),
    "sampling": estimators.sampling,
    "equi-width": estimators.equi_width,
    "equi-depth": estimators.equi_depth,
    "v-optimal": estimators.v_optimal,
    "wavelet": estimators.wavelet,
    "kernel": lambda sample, domain: estimators.kernel(
        sample, domain, bandwidth="plug-in"
    ),
    "hybrid": estimators.hybrid,
}

#: Process-wide ANALYZE result cache shared by all catalogs.  Keys are
#: ``(table name, table fingerprint, family, sample size, seed, kind,
#: columns...)`` so a statistic is reused only for identical data *and*
#: identical build parameters; a table whose data changed has a new
#: fingerprint and misses naturally, while :meth:`Catalog.invalidate`
#: evicts explicitly.
_STATISTICS_CACHE = LRUCache(capacity=256, name="statistics")


def _seed_cache_key(seed: "int | np.integer | np.random.Generator | None") -> "tuple | None":
    """Hashable cache key for a sampling seed, or ``None`` if the seed
    cannot key a cache (generator seeds advance private state between
    draws, so reusing a cached build would change semantics)."""
    if isinstance(seed, (int, np.integer)):
        return ("int", int(seed))
    return None


class Catalog:
    """Per-table statistics built by ANALYZE.

    Parameters
    ----------
    family:
        Estimator family used for single-column statistics (a key of
        :data:`FAMILIES`).
    sample_size:
        Rows scanned per ANALYZE (the paper's 2,000 by default).
    """

    def __init__(
        self,
        family: str = "kernel",
        sample_size: int = 2_000,
        staleness_budget: float = 0.5,
    ) -> None:
        if family not in FAMILIES:
            raise InvalidQueryError(
                f"unknown estimator family {family!r}; available: {', '.join(FAMILIES)}"
            )
        if sample_size < 2:
            raise InvalidQueryError(f"sample size must be >= 2, got {sample_size}")
        if not 0.0 < staleness_budget <= 1.0:
            raise InvalidQueryError(
                f"staleness budget must be in (0, 1], got {staleness_budget}"
            )
        self._family = family
        self._sample_size = sample_size
        self._staleness_budget = staleness_budget
        self._column_stats: dict[tuple[str, str], SelectivityEstimator] = {}
        self._joint_stats: dict[tuple[str, str, str], KernelEstimator2D] = {}
        self._row_counts: dict[str, int] = {}
        self._version = 0
        # Incremental-refresh state: live mergeable summaries per
        # (table, column), the table statistics version they have
        # absorbed, the row count at the last full rebuild and the
        # rows changed since (the staleness-budget numerator), plus
        # the ANALYZE parameters needed to repeat a full rebuild.
        self._summaries: dict[tuple[str, str], ColumnSummary] = {}
        self._applied: dict[str, int] = {}
        self._base_rows: dict[str, int] = {}
        self._changed_rows: dict[str, int] = {}
        self._analyze_seeds: dict[str, "int | None"] = {}
        self._joint_specs: dict[str, "list[tuple[str, str]]"] = {}
        # Serving-grade monitors: every ANALYZE stamps the staleness
        # monitor and (when it actually drew a sample) baselines the
        # drift monitor, so a long-lived catalog can report how old and
        # how wrong its statistics have become.
        self.drift = DriftMonitor()
        self.staleness = StalenessMonitor()

    @property
    def family(self) -> str:
        """Estimator family ANALYZE builds."""
        return self._family

    @property
    def staleness_budget(self) -> float:
        """Changed-row fraction beyond which refresh falls back to a rescan."""
        return self._staleness_budget

    @staticmethod
    def _summary_seed(table_name: str, column: str) -> int:
        """Deterministic reservoir seed per (table, column).

        Derived by hashing the names, not from the ANALYZE sampling
        seed, so summaries built by different catalogs (or serving
        forks) over the same column are always mergeable.
        """
        return zlib.crc32(f"{table_name}|{column}".encode())

    def analyze(
        self,
        table: Table,
        joint: "list[tuple[str, str]] | None" = None,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        """Collect statistics for a table (replacing any previous ones).

        Parameters
        ----------
        table:
            The table to scan.
        joint:
            Column pairs to additionally cover with joint 2-D kernel
            statistics (for correlated attributes).
        seed:
            Sampling seed: an integer (cacheable) or a ready
            ``np.random.Generator`` (bypasses the statistics cache).
            Required — ``None`` raises
            :class:`~repro.core.base.MissingSeedError` when the scan
            draws its sample, so every ANALYZE is reproducible.

        The replacement is atomic with respect to concurrent readers:
        every statistic is built into a staging map first and installed
        with one reference swap per map at the end, so a reader racing
        an ANALYZE sees either the old statistics set or the new one —
        never a half-rebuilt mixture — and a build failure leaves the
        catalog exactly as it was.
        """
        n = min(self._sample_size, table.row_count)
        seed_key = _seed_cache_key(seed)
        key_base = (
            (table.name, table.fingerprint, self._family, n, seed_key)
            if seed_key is not None
            else None
        )
        rows: "dict[str, np.ndarray] | None" = None

        def sampled() -> "dict[str, np.ndarray]":
            # One row-aligned sample shared by every statistic this
            # ANALYZE actually has to build.
            nonlocal rows
            if rows is None:
                rows = table.sample_rows(n, seed=seed)
            return rows

        build = FAMILIES[self._family]
        new_columns: dict[tuple[str, str], SelectivityEstimator] = {}
        new_joints: dict[tuple[str, str, str], KernelEstimator2D] = {}
        for column in table.column_names:
            statistic = MISS
            key = key_base + ("column", column) if key_base else None
            if key is not None:
                statistic = _STATISTICS_CACHE.get(key)
            if statistic is MISS:
                statistic = build(sampled()[column], table.domain(column))
                if key is not None:
                    _STATISTICS_CACHE.put(key, statistic)
            new_columns[(table.name, column)] = statistic
        for x, y in joint or []:
            statistic = MISS
            key = key_base + ("joint", x, y) if key_base else None
            if key is not None:
                statistic = _STATISTICS_CACHE.get(key)
            if statistic is MISS:
                sample = np.column_stack([sampled()[x], sampled()[y]])
                statistic = KernelEstimator2D(
                    sample,
                    bandwidths=plugin_bandwidths_2d(sample),
                    domain_x=table.domain(x),
                    domain_y=table.domain(y),
                )
                if key is not None:
                    _STATISTICS_CACHE.put(key, statistic)
            new_joints[(table.name, x, y)] = statistic
        # Delta-aware substrate: rebuild the live mergeable summaries
        # from the full columns (one vectorized O(n) pass each) so
        # subsequent mutations can be folded in incrementally by
        # refresh() instead of repeating this scan.
        table_version = table.statistics_version
        new_summaries: dict[tuple[str, str], ColumnSummary] = {}
        for column in table.column_names:
            summary = ColumnSummary(
                table.domain(column),
                seed=self._summary_seed(table.name, column),
                capacity=n,
            )
            summary.update(table.column(column))
            new_summaries[(table.name, column)] = summary
        # Atomic install: replace the table's statistics with one
        # reference swap per map (reads racing this see old-or-new,
        # never a mixture; nothing above mutated catalog state, so a
        # failed build changed nothing).
        column_stats = {
            key: value for key, value in self._column_stats.items() if key[0] != table.name
        }
        column_stats.update(new_columns)
        joint_stats = {
            key: value for key, value in self._joint_stats.items() if key[0] != table.name
        }
        joint_stats.update(new_joints)
        summaries = {
            key: value for key, value in self._summaries.items() if key[0] != table.name
        }
        summaries.update(new_summaries)
        self._column_stats = column_stats
        self._joint_stats = joint_stats
        self._summaries = summaries
        self._row_counts = {**self._row_counts, table.name: table.row_count}
        self._applied = {**self._applied, table.name: table_version}
        self._base_rows = {**self._base_rows, table.name: table.row_count}
        self._changed_rows = {**self._changed_rows, table.name: 0}
        self._analyze_seeds = {
            **self._analyze_seeds,
            table.name: seed if isinstance(seed, (int, np.integer)) else None,
        }
        self._joint_specs = {**self._joint_specs, table.name: list(joint or [])}
        self._version += 1
        self.staleness.on_analyze(table.name, self._version)
        self._emit_version_gauge(table.name, table_version)
        # Drift baselines come from the sample this ANALYZE actually
        # drew.  A full statistics-cache hit never touches the table
        # (rows stays None); the existing baselines remain valid in
        # that case because the cache key includes the data fingerprint.
        if rows is not None:
            for column in table.column_names:
                self.drift.set_baseline(table.name, column, rows[column])

    @property
    def version(self) -> int:
        """Monotonic statistics version.

        Bumped by every :meth:`analyze` and :meth:`invalidate`, so
        downstream caches (the planner's estimate LRU) can key on it
        and age out entries computed from superseded statistics.
        """
        return self._version

    def refresh(self, table: Table, seed: "int | np.random.Generator | None" = None) -> str:
        """Bring the table's statistics up to date; returns the mode used.

        Modes:

        ``"fresh"``
            Nothing to do — the summaries already cover the table's
            current statistics version.
        ``"incremental"``
            The mutation deltas since the last absorbed version were
            merged into the live summaries (appends as partial-summary
            merges, deletes as subtractions), the summaries re-frozen,
            and the estimators rebuilt from the frozen summaries —
            O(delta + reservoir), no table rescan.
        ``"full"``
            Fallback to a complete :meth:`analyze` rescan: first-ever
            refresh, compacted delta log, changed-row fraction beyond
            the staleness budget, deletions that outran the reservoir,
            or declared joint statistics (which need row-aligned pairs
            a per-column summary cannot provide).

        ``seed`` is only needed for the full path; it defaults to the
        seed recorded by the previous ``analyze``.
        """
        name = table.name
        if seed is None:
            seed = self._analyze_seeds.get(name)
        applied = self._applied.get(name)
        if not self.has_statistics(name) or applied is None:
            return self._full_refresh(table, seed)
        if applied == table.statistics_version:
            self._emit_refresh("fresh")
            return "fresh"
        if self._joint_specs.get(name):
            return self._full_refresh(table, seed)
        try:
            deltas = table.deltas_since(applied)
        except (StaleDeltaLog, InvalidQueryError):
            return self._full_refresh(table, seed)
        changed = self._changed_rows.get(name, 0) + sum(d.row_count for d in deltas)
        base = max(self._base_rows.get(name, table.row_count), 1)
        if changed / base > self._staleness_budget:
            return self._full_refresh(table, seed)
        # Stage the new summaries and estimators fully before
        # installing anything, same reference-swap discipline as
        # analyze(): a failed build leaves the catalog untouched and
        # readers never see a half-merged summary.
        build = FAMILIES[self._family]
        staged: dict[tuple[str, str], ColumnSummary] = {}
        rebuilt: dict[tuple[str, str], SelectivityEstimator] = {}
        frozen_by_column: dict[str, FrozenSummary] = {}
        try:
            for column in table.column_names:
                live = self._summaries.get((name, column))
                if live is None:
                    return self._full_refresh(table, seed)
                working = live.copy()
                for delta in deltas:
                    batch = delta.rows[column]
                    if delta.kind == "append":
                        partial = ColumnSummary(
                            working.domain,
                            seed=working.seed,
                            capacity=working.capacity,
                            grid_bins=working.grid_bins,
                        )
                        partial.update(batch)
                        working = working.merge(partial)
                    else:
                        working.delete(batch)
                frozen = working.freeze()
                staged[(name, column)] = working
                frozen_by_column[column] = frozen
                rebuilt[(name, column)] = build(frozen, table.domain(column))
        except InvalidSampleError:
            # Degenerate summaries (e.g. deletions emptied a reservoir)
            # cannot support a rebuild; rescan instead.
            return self._full_refresh(table, seed)
        self._column_stats = {**self._column_stats, **rebuilt}
        self._summaries = {**self._summaries, **staged}
        self._row_counts = {**self._row_counts, name: table.row_count}
        self._applied = {**self._applied, name: table.statistics_version}
        self._changed_rows = {**self._changed_rows, name: changed}
        self._version += 1
        self.staleness.on_analyze(name, self._version)
        # Re-baseline drift on the refreshed summary samples: the new
        # statistics now represent the mutated data, so KS must be
        # measured against them, not the superseded ANALYZE sample.
        for column, frozen in frozen_by_column.items():
            self.drift.set_baseline(name, column, frozen.sample)
        self._emit_refresh("incremental")
        self._emit_version_gauge(name, table.statistics_version)
        return "incremental"

    def maintain(
        self,
        tables: "list[Table]",
        ks_threshold: float = 0.15,
        seed: "int | np.random.Generator | None" = None,
    ) -> "dict[str, str]":
        """Drift- and lag-triggered selective refresh.

        For every analyzed table, consult the KS drift readings of its
        columns and its statistics-version lag; refresh only the
        tables that drifted past ``ks_threshold`` or have unabsorbed
        mutations — the rest keep their statistics untouched.  Returns
        the mode per table (``"fresh"`` when nothing was needed).
        Drift-triggered refreshes additionally count on
        ``catalog.refresh.drift``.
        """
        modes: dict[str, str] = {}
        for table in tables:
            name = table.name
            if not self.has_statistics(name):
                continue
            drifted = any(
                (reading := self.drift.reading(name, column)) is not None
                and reading.ks >= ks_threshold
                for column in table.column_names
            )
            lagging = self._applied.get(name) != table.statistics_version
            if drifted or lagging:
                mode = self.refresh(table, seed=seed)
                if mode == "fresh" and drifted:
                    # The statistics cover the table's current version,
                    # yet the observed workload drifted past the KS
                    # threshold — the build-time sample misrepresents
                    # the data (unlucky draw, or mutations the delta
                    # log cannot explain).  Rescan; analyze() also
                    # re-baselines the drift monitor so one rebuild
                    # settles the alarm instead of re-firing forever.
                    mode = self._full_refresh(
                        table,
                        seed if seed is not None else self._analyze_seeds.get(name),
                    )
                modes[name] = mode
                if drifted:
                    self._emit_refresh("drift")
            else:
                modes[name] = "fresh"
        return modes

    def fork(self) -> "Catalog":
        """Copy-on-refresh clone for atomic snapshot publication.

        The fork shares the (immutable, frozen-after-build) estimator
        objects and the thread-safe drift/staleness monitors, but
        deep-copies the live mergeable summaries — so refreshing the
        fork never mutates state referenced by an already-published
        serving snapshot, and readers pinned to the old snapshot keep
        a consistent statistics set.
        """
        out = Catalog(self._family, self._sample_size, self._staleness_budget)
        out._column_stats = dict(self._column_stats)
        out._joint_stats = dict(self._joint_stats)
        out._row_counts = dict(self._row_counts)
        out._version = self._version
        out._summaries = {key: summary.copy() for key, summary in self._summaries.items()}
        out._applied = dict(self._applied)
        out._base_rows = dict(self._base_rows)
        out._changed_rows = dict(self._changed_rows)
        out._analyze_seeds = dict(self._analyze_seeds)
        out._joint_specs = {name: list(spec) for name, spec in self._joint_specs.items()}
        out.drift = self.drift
        out.staleness = self.staleness
        return out

    def _full_refresh(self, table: Table, seed: "int | np.random.Generator | None") -> str:
        self.analyze(table, joint=self._joint_specs.get(table.name), seed=seed)
        self._emit_refresh("full")
        return "full"

    def _emit_refresh(self, mode: str) -> None:
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.inc(f"catalog.refresh.{mode}")

    def _emit_version_gauge(self, table_name: str, version: int) -> None:
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.set_gauge(
                f"catalog.statistics_version.{table_name}", float(version)
            )

    def invalidate(self, table_name: str) -> None:
        """Drop all statistics for a table (explicit data-change hook).

        Removes the catalog's own statistics *and* evicts the table's
        entries from the shared ANALYZE cache, so a subsequent
        ``analyze`` rebuilds from scratch even if the replacement data
        happens to collide on name and sample parameters.  Emits the
        ``cache.invalidate`` counter (plus the per-cache
        ``cache.invalidate.statistics`` segment) so eviction traffic
        is visible next to the hit/miss series.
        """
        # Same reference-swap discipline as analyze(): concurrent
        # readers see the table's statistics all present or all gone.
        self._row_counts = {
            name: count for name, count in self._row_counts.items() if name != table_name
        }
        self._column_stats = {
            key: value for key, value in self._column_stats.items() if key[0] != table_name
        }
        self._joint_stats = {
            key: value for key, value in self._joint_stats.items() if key[0] != table_name
        }
        self._summaries = {
            key: value for key, value in self._summaries.items() if key[0] != table_name
        }
        self._applied = {
            name: version for name, version in self._applied.items() if name != table_name
        }
        _STATISTICS_CACHE.evict(lambda key: key[0] == table_name)
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.inc("cache.invalidate")
            telemetry.metrics.inc(f"cache.invalidate.{_STATISTICS_CACHE.name}")
        self._version += 1
        self.staleness.forget(table_name)

    def has_statistics(self, table_name: str) -> bool:
        """Whether ANALYZE has run for the table."""
        return table_name in self._row_counts

    def observe_values(
        self, table_name: str, column: str, values: np.ndarray
    ) -> "DriftReading | None":
        """Feed recently seen attribute values to the drift monitor.

        Call this from wherever fresh data is visible (ingest paths,
        executed scans, the feedback loop); once enough values
        accumulate, the KS distance against the build-time sample is
        available via the returned reading and (in traced runs) the
        ``drift.ks.<table>.<column>`` gauge.
        """
        return self.drift.ingest(table_name, column, values)

    def staleness_of(self, table_name: str) -> "Staleness | None":
        """Current staleness of the table's statistics, if stamped."""
        return self.staleness.observe(table_name, self._version)

    def row_count(self, table_name: str) -> int:
        """Cached row count."""
        self._require(table_name)
        return self._row_counts[table_name]

    def column_statistic(self, table_name: str, column: str) -> SelectivityEstimator:
        """The cached single-column estimator."""
        self._require(table_name)
        key = (table_name, column)
        if key not in self._column_stats:
            raise InvalidQueryError(f"no statistics for {table_name}.{column}")
        return self._column_stats[key]

    def joint_statistic(
        self, table_name: str, x: str, y: str
    ) -> "KernelEstimator2D | None":
        """The cached joint estimator for a column pair, if any.

        Order-insensitive: ``(x, y)`` and ``(y, x)`` resolve to the
        same statistic (with axes swapped by the caller as needed).
        """
        self._require(table_name)
        if (table_name, x, y) in self._joint_stats:
            return self._joint_stats[(table_name, x, y)]
        return None

    def joint_orientation(self, table_name: str, x: str, y: str) -> "tuple[str, str] | None":
        """The stored axis order covering ``{x, y}``, if any pair does."""
        if (table_name, x, y) in self._joint_stats:
            return (x, y)
        if (table_name, y, x) in self._joint_stats:
            return (y, x)
        return None

    def _require(self, table_name: str) -> None:
        if table_name not in self._row_counts:
            raise InvalidQueryError(
                f"no statistics for table {table_name!r}; run analyze() first"
            )
