"""The statistics catalog: ANALYZE and cached per-column estimators.

A real system separates statistics *collection* (ANALYZE scans a
sample once) from *use* (the optimizer consults cached statistics on
every query).  :class:`Catalog` does the same: ``analyze(table)``
draws one row-aligned sample and builds a selectivity estimator per
column — any family from :mod:`repro.estimators` — plus optional
joint 2-D statistics for declared column pairs.
"""

from __future__ import annotations

import numpy as np

from repro import estimators
from repro.core.base import InvalidQueryError, SelectivityEstimator
from repro.db.cache import MISS, LRUCache
from repro.db.table import Table
from repro.multidim import KernelEstimator2D, plugin_bandwidths_2d
from repro.telemetry.drift import DriftMonitor, DriftReading, Staleness, StalenessMonitor

#: Estimator families ANALYZE can build, by name.
FAMILIES = {
    "uniform": lambda sample, domain: estimators.uniform(domain),
    "sampling": estimators.sampling,
    "equi-width": estimators.equi_width,
    "equi-depth": estimators.equi_depth,
    "v-optimal": estimators.v_optimal,
    "wavelet": estimators.wavelet,
    "kernel": lambda sample, domain: estimators.kernel(
        sample, domain, bandwidth="plug-in"
    ),
    "hybrid": estimators.hybrid,
}

#: Process-wide ANALYZE result cache shared by all catalogs.  Keys are
#: ``(table name, table fingerprint, family, sample size, seed, kind,
#: columns...)`` so a statistic is reused only for identical data *and*
#: identical build parameters; a table whose data changed has a new
#: fingerprint and misses naturally, while :meth:`Catalog.invalidate`
#: evicts explicitly.
_STATISTICS_CACHE = LRUCache(capacity=256, name="statistics")


def _seed_cache_key(seed: "int | np.integer | np.random.Generator | None") -> "tuple | None":
    """Hashable cache key for a sampling seed, or ``None`` if the seed
    cannot key a cache (generator seeds advance private state between
    draws, so reusing a cached build would change semantics)."""
    if isinstance(seed, (int, np.integer)):
        return ("int", int(seed))
    return None


class Catalog:
    """Per-table statistics built by ANALYZE.

    Parameters
    ----------
    family:
        Estimator family used for single-column statistics (a key of
        :data:`FAMILIES`).
    sample_size:
        Rows scanned per ANALYZE (the paper's 2,000 by default).
    """

    def __init__(self, family: str = "kernel", sample_size: int = 2_000) -> None:
        if family not in FAMILIES:
            raise InvalidQueryError(
                f"unknown estimator family {family!r}; available: {', '.join(FAMILIES)}"
            )
        if sample_size < 2:
            raise InvalidQueryError(f"sample size must be >= 2, got {sample_size}")
        self._family = family
        self._sample_size = sample_size
        self._column_stats: dict[tuple[str, str], SelectivityEstimator] = {}
        self._joint_stats: dict[tuple[str, str, str], KernelEstimator2D] = {}
        self._row_counts: dict[str, int] = {}
        self._version = 0
        # Serving-grade monitors: every ANALYZE stamps the staleness
        # monitor and (when it actually drew a sample) baselines the
        # drift monitor, so a long-lived catalog can report how old and
        # how wrong its statistics have become.
        self.drift = DriftMonitor()
        self.staleness = StalenessMonitor()

    @property
    def family(self) -> str:
        """Estimator family ANALYZE builds."""
        return self._family

    def analyze(
        self,
        table: Table,
        joint: "list[tuple[str, str]] | None" = None,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        """Collect statistics for a table (replacing any previous ones).

        Parameters
        ----------
        table:
            The table to scan.
        joint:
            Column pairs to additionally cover with joint 2-D kernel
            statistics (for correlated attributes).
        seed:
            Sampling seed: an integer (cacheable) or a ready
            ``np.random.Generator`` (bypasses the statistics cache).
            Required — ``None`` raises
            :class:`~repro.core.base.MissingSeedError` when the scan
            draws its sample, so every ANALYZE is reproducible.

        The replacement is atomic with respect to concurrent readers:
        every statistic is built into a staging map first and installed
        with one reference swap per map at the end, so a reader racing
        an ANALYZE sees either the old statistics set or the new one —
        never a half-rebuilt mixture — and a build failure leaves the
        catalog exactly as it was.
        """
        n = min(self._sample_size, table.row_count)
        seed_key = _seed_cache_key(seed)
        key_base = (
            (table.name, table.fingerprint, self._family, n, seed_key)
            if seed_key is not None
            else None
        )
        rows: "dict[str, np.ndarray] | None" = None

        def sampled() -> "dict[str, np.ndarray]":
            # One row-aligned sample shared by every statistic this
            # ANALYZE actually has to build.
            nonlocal rows
            if rows is None:
                rows = table.sample_rows(n, seed=seed)
            return rows

        build = FAMILIES[self._family]
        new_columns: dict[tuple[str, str], SelectivityEstimator] = {}
        new_joints: dict[tuple[str, str, str], KernelEstimator2D] = {}
        for column in table.column_names:
            statistic = MISS
            key = key_base + ("column", column) if key_base else None
            if key is not None:
                statistic = _STATISTICS_CACHE.get(key)
            if statistic is MISS:
                statistic = build(sampled()[column], table.domain(column))
                if key is not None:
                    _STATISTICS_CACHE.put(key, statistic)
            new_columns[(table.name, column)] = statistic
        for x, y in joint or []:
            statistic = MISS
            key = key_base + ("joint", x, y) if key_base else None
            if key is not None:
                statistic = _STATISTICS_CACHE.get(key)
            if statistic is MISS:
                sample = np.column_stack([sampled()[x], sampled()[y]])
                statistic = KernelEstimator2D(
                    sample,
                    bandwidths=plugin_bandwidths_2d(sample),
                    domain_x=table.domain(x),
                    domain_y=table.domain(y),
                )
                if key is not None:
                    _STATISTICS_CACHE.put(key, statistic)
            new_joints[(table.name, x, y)] = statistic
        # Atomic install: replace the table's statistics with one
        # reference swap per map (reads racing this see old-or-new,
        # never a mixture; nothing above mutated catalog state, so a
        # failed build changed nothing).
        column_stats = {
            key: value for key, value in self._column_stats.items() if key[0] != table.name
        }
        column_stats.update(new_columns)
        joint_stats = {
            key: value for key, value in self._joint_stats.items() if key[0] != table.name
        }
        joint_stats.update(new_joints)
        self._column_stats = column_stats
        self._joint_stats = joint_stats
        self._row_counts = {**self._row_counts, table.name: table.row_count}
        self._version += 1
        self.staleness.on_analyze(table.name, self._version)
        # Drift baselines come from the sample this ANALYZE actually
        # drew.  A full statistics-cache hit never touches the table
        # (rows stays None); the existing baselines remain valid in
        # that case because the cache key includes the data fingerprint.
        if rows is not None:
            for column in table.column_names:
                self.drift.set_baseline(table.name, column, rows[column])

    @property
    def version(self) -> int:
        """Monotonic statistics version.

        Bumped by every :meth:`analyze` and :meth:`invalidate`, so
        downstream caches (the planner's estimate LRU) can key on it
        and age out entries computed from superseded statistics.
        """
        return self._version

    def invalidate(self, table_name: str) -> None:
        """Drop all statistics for a table (explicit data-change hook).

        Removes the catalog's own statistics *and* evicts the table's
        entries from the shared ANALYZE cache, so a subsequent
        ``analyze`` rebuilds from scratch even if the replacement data
        happens to collide on name and sample parameters.
        """
        # Same reference-swap discipline as analyze(): concurrent
        # readers see the table's statistics all present or all gone.
        self._row_counts = {
            name: count for name, count in self._row_counts.items() if name != table_name
        }
        self._column_stats = {
            key: value for key, value in self._column_stats.items() if key[0] != table_name
        }
        self._joint_stats = {
            key: value for key, value in self._joint_stats.items() if key[0] != table_name
        }
        _STATISTICS_CACHE.evict(lambda key: key[0] == table_name)
        self._version += 1
        self.staleness.forget(table_name)

    def has_statistics(self, table_name: str) -> bool:
        """Whether ANALYZE has run for the table."""
        return table_name in self._row_counts

    def observe_values(
        self, table_name: str, column: str, values: np.ndarray
    ) -> "DriftReading | None":
        """Feed recently seen attribute values to the drift monitor.

        Call this from wherever fresh data is visible (ingest paths,
        executed scans, the feedback loop); once enough values
        accumulate, the KS distance against the build-time sample is
        available via the returned reading and (in traced runs) the
        ``drift.ks.<table>.<column>`` gauge.
        """
        return self.drift.ingest(table_name, column, values)

    def staleness_of(self, table_name: str) -> "Staleness | None":
        """Current staleness of the table's statistics, if stamped."""
        return self.staleness.observe(table_name, self._version)

    def row_count(self, table_name: str) -> int:
        """Cached row count."""
        self._require(table_name)
        return self._row_counts[table_name]

    def column_statistic(self, table_name: str, column: str) -> SelectivityEstimator:
        """The cached single-column estimator."""
        self._require(table_name)
        key = (table_name, column)
        if key not in self._column_stats:
            raise InvalidQueryError(f"no statistics for {table_name}.{column}")
        return self._column_stats[key]

    def joint_statistic(
        self, table_name: str, x: str, y: str
    ) -> "KernelEstimator2D | None":
        """The cached joint estimator for a column pair, if any.

        Order-insensitive: ``(x, y)`` and ``(y, x)`` resolve to the
        same statistic (with axes swapped by the caller as needed).
        """
        self._require(table_name)
        if (table_name, x, y) in self._joint_stats:
            return self._joint_stats[(table_name, x, y)]
        return None

    def joint_orientation(self, table_name: str, x: str, y: str) -> "tuple[str, str] | None":
        """The stored axis order covering ``{x, y}``, if any pair does."""
        if (table_name, x, y) in self._joint_stats:
            return (x, y)
        if (table_name, y, x) in self._joint_stats:
            return (y, x)
        return None

    def _require(self, table_name: str) -> None:
        if table_name not in self._row_counts:
            raise InvalidQueryError(
                f"no statistics for table {table_name!r}; run analyze() first"
            )
