"""Cardinality estimation and access-path selection.

The consumer the paper's introduction describes: given a conjunction
of range predicates, estimate the result cardinality from catalog
statistics and pick the cheaper access path.  Cardinality estimation
uses joint 2-D statistics where the catalog has them and falls back to
the textbook independence assumption otherwise; the cost model is the
classic index-probe vs. sequential-scan trade-off.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.base import InvalidQueryError, validate_query
from repro.db.catalog import Catalog
from repro.db.table import Table


@dataclasses.dataclass(frozen=True)
class RangePredicate:
    """``a <= table.column <= b``."""

    column: str
    a: float
    b: float

    def __post_init__(self) -> None:
        a, b = validate_query(self.a, self.b)
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)


@dataclasses.dataclass(frozen=True)
class Plan:
    """An EXPLAIN row: the chosen access path and its numbers."""

    table: str
    access_path: str
    estimated_rows: float
    estimated_cost: float
    alternatives: tuple[tuple[str, float], ...]

    def explain(self) -> str:
        """One-line EXPLAIN rendering."""
        others = ", ".join(f"{name}={cost:.0f}" for name, cost in self.alternatives)
        return (
            f"{self.access_path} on {self.table}  "
            f"(rows~{self.estimated_rows:.0f}, cost={self.estimated_cost:.0f}; "
            f"rejected: {others})"
        )


class Planner:
    """Cardinality estimation + two-path cost model over a catalog.

    Parameters
    ----------
    catalog:
        Statistics source (run ``analyze`` first).
    cost_seq_tuple / cost_random_tuple / cost_index_probe:
        Cost-model constants: per-row sequential read, per-row random
        read through an index, and fixed index overhead.
    """

    def __init__(
        self,
        catalog: Catalog,
        *,
        cost_seq_tuple: float = 1.0,
        cost_random_tuple: float = 8.0,
        cost_index_probe: float = 500.0,
    ) -> None:
        if min(cost_seq_tuple, cost_random_tuple) <= 0 or cost_index_probe < 0:
            raise InvalidQueryError("cost constants must be positive")
        self._catalog = catalog
        self._c_seq = cost_seq_tuple
        self._c_rand = cost_random_tuple
        self._c_probe = cost_index_probe

    def selectivity(self, table: Table, predicates: "list[RangePredicate]") -> float:
        """Estimated selectivity of a conjunction of range predicates.

        Pairs covered by joint statistics are estimated jointly; the
        remaining factors multiply in (independence assumption).
        """
        if not predicates:
            return 1.0
        by_column: dict[str, RangePredicate] = {}
        for predicate in predicates:
            if predicate.column in by_column:
                # Conjunct on the same column: intersect the ranges.
                existing = by_column[predicate.column]
                a = max(existing.a, predicate.a)
                b = min(existing.b, predicate.b)
                if a > b:
                    return 0.0
                by_column[predicate.column] = RangePredicate(predicate.column, a, b)
            else:
                by_column[predicate.column] = predicate

        remaining = dict(by_column)
        total = 1.0
        # Joint statistics first (each column participates once).
        for x in list(remaining):
            if x not in remaining:
                continue
            for y in list(remaining):
                if y == x or y not in remaining or x not in remaining:
                    continue
                orientation = self._catalog.joint_orientation(table.name, x, y)
                if orientation is None:
                    continue
                first, second = orientation
                joint = self._catalog.joint_statistic(table.name, first, second)
                p_first = remaining.pop(first)
                p_second = remaining.pop(second)
                total *= joint.selectivity(
                    p_first.a, p_first.b, p_second.a, p_second.b
                )
        for column, predicate in remaining.items():
            statistic = self._catalog.column_statistic(table.name, column)
            total *= statistic.selectivity(predicate.a, predicate.b)
        return float(np.clip(total, 0.0, 1.0))

    def cardinality(self, table: Table, predicates: "list[RangePredicate]") -> float:
        """Estimated result rows ``N * sigma``."""
        return self.selectivity(table, predicates) * self._catalog.row_count(table.name)

    def plan(self, table: Table, predicates: "list[RangePredicate]") -> Plan:
        """Choose the cheaper access path under the cost model."""
        rows = self._catalog.row_count(table.name)
        estimated = self.cardinality(table, predicates)
        seq_cost = rows * self._c_seq
        index_cost = self._c_probe + estimated * self._c_rand
        paths = {"seq scan": seq_cost, "index scan": index_cost}
        winner = min(paths, key=paths.get)
        alternatives = tuple(
            (name, cost) for name, cost in paths.items() if name != winner
        )
        return Plan(table.name, winner, estimated, paths[winner], alternatives)
