"""Cardinality estimation and access-path selection.

The consumer the paper's introduction describes: given a conjunction
of range predicates, estimate the result cardinality from catalog
statistics and pick the cheaper access path.  Cardinality estimation
uses joint 2-D statistics where the catalog has them and falls back to
the textbook independence assumption otherwise; the cost model is the
classic index-probe vs. sequential-scan trade-off.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.core.base import InvalidQueryError, validate_query
from repro.db.cache import MISS, LRUCache
from repro.db.catalog import Catalog
from repro.db.table import Table
from repro.telemetry import get_telemetry
from repro.telemetry.quality import QualityRecord, record_quality

#: Entries kept in each planner's recent-estimate LRU.  Sized when a
#: hybrid estimate cost ~100 us of per-bin Python dispatch; the flat
#: hybrid layout cut that by an order of magnitude, but the cache stays
#: at 512 because repeated hot predicates still dominate optimizer
#: workloads and the hit-rate SLO (see docs/OBSERVABILITY.md) is
#: calibrated against this capacity.
ESTIMATE_CACHE_SIZE = 512


@dataclasses.dataclass(frozen=True)
class RangePredicate:
    """``a <= table.column <= b``."""

    column: str
    a: float
    b: float

    def __post_init__(self) -> None:
        a, b = validate_query(self.a, self.b)
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)


@dataclasses.dataclass(frozen=True)
class Plan:
    """An EXPLAIN row: the chosen access path and its numbers.

    Beyond the classic EXPLAIN columns, a plan carries its own
    observability record: where each selectivity factor came from
    (``provenance``) and how long each planning stage took
    (``timings``, stage → seconds).  ``explain(analyze=True)`` renders
    both, in the spirit of ``EXPLAIN ANALYZE``.
    """

    table: str
    access_path: str
    estimated_rows: float
    estimated_cost: float
    alternatives: tuple[tuple[str, float], ...]
    provenance: tuple[str, ...] = ()
    timings: tuple[tuple[str, float], ...] = ()

    def with_provenance(self, *notes: str) -> "Plan":
        """A copy with ``notes`` appended to the provenance trail.

        The serving tier uses this to stamp plans with the tier that
        produced them and any fallback steps taken on the way — the
        plan stays immutable, the trail stays append-only.
        """
        return dataclasses.replace(self, provenance=self.provenance + tuple(notes))

    def explain(self, analyze: bool = False) -> str:
        """EXPLAIN rendering; ``analyze=True`` adds timings + provenance."""
        line = (
            f"{self.access_path} on {self.table}  "
            f"(rows~{self.estimated_rows:.0f}, cost={self.estimated_cost:.0f}"
        )
        if self.alternatives:
            others = ", ".join(f"{name}={cost:.0f}" for name, cost in self.alternatives)
            line += f"; rejected: {others}"
        line += ")"
        if not analyze:
            return line
        lines = [line]
        if self.provenance:
            lines.append("  estimates: " + "; ".join(self.provenance))
        if self.timings:
            lines.append(
                "  timings: "
                + ", ".join(f"{stage}={seconds * 1e6:.1f}us" for stage, seconds in self.timings)
            )
        return "\n".join(lines)


class Planner:
    """Cardinality estimation + two-path cost model over a catalog.

    Parameters
    ----------
    catalog:
        Statistics source (run ``analyze`` first).
    cost_seq_tuple / cost_random_tuple / cost_index_probe:
        Cost-model constants: per-row sequential read, per-row random
        read through an index, and fixed index overhead.
    """

    def __init__(
        self,
        catalog: Catalog,
        *,
        cost_seq_tuple: float = 1.0,
        cost_random_tuple: float = 8.0,
        cost_index_probe: float = 500.0,
    ) -> None:
        if min(cost_seq_tuple, cost_random_tuple) <= 0 or cost_index_probe < 0:
            raise InvalidQueryError("cost constants must be positive")
        self._catalog = catalog
        self._c_seq = cost_seq_tuple
        self._c_rand = cost_random_tuple
        self._c_probe = cost_index_probe
        # Recent range-estimate results.  Optimizers re-plan the same
        # hot predicates constantly; keying on the catalog version
        # ages out entries as soon as statistics are rebuilt.
        self._estimates = LRUCache(ESTIMATE_CACHE_SIZE, name="planner")

    def selectivity(self, table: Table, predicates: "list[RangePredicate]") -> float:
        """Estimated selectivity of a conjunction of range predicates.

        Pairs covered by joint statistics are estimated jointly; the
        remaining factors multiply in (independence assumption).
        """
        return self._selectivity_with_provenance(table, predicates)[0]

    def _selectivity_with_provenance(
        self, table: Table, predicates: "list[RangePredicate]"
    ) -> tuple[float, tuple[str, ...]]:
        """Selectivity plus a human-readable source per factor.

        Results are memoized in a bounded LRU keyed by the canonical
        predicate set and the catalog's statistics version (lookups
        surface as ``cache.hit.planner`` / ``cache.miss.planner``).
        """
        if not predicates:
            return 1.0, ("no predicates: selectivity 1",)
        key = (
            table.name,
            self._catalog.version,
            tuple(sorted((p.column, p.a, p.b) for p in predicates)),
        )
        cached = self._estimates.get(key)
        if cached is not MISS:
            return cached
        result = self._estimate_selectivity(table, predicates)
        self._estimates.put(key, result)
        return result

    def _estimate_selectivity(
        self, table: Table, predicates: "list[RangePredicate]"
    ) -> tuple[float, tuple[str, ...]]:
        provenance: list[str] = []
        by_column: dict[str, RangePredicate] = {}
        for predicate in predicates:
            if predicate.column in by_column:
                # Conjunct on the same column: intersect the ranges.
                existing = by_column[predicate.column]
                a = max(existing.a, predicate.a)
                b = min(existing.b, predicate.b)
                if a > b:
                    return 0.0, (f"contradiction({predicate.column}): selectivity 0",)
                by_column[predicate.column] = RangePredicate(predicate.column, a, b)
            else:
                by_column[predicate.column] = predicate

        remaining = dict(by_column)
        total = 1.0
        # Joint statistics first (each column participates once).
        for x in list(remaining):
            if x not in remaining:
                continue
            for y in list(remaining):
                if y == x or y not in remaining or x not in remaining:
                    continue
                orientation = self._catalog.joint_orientation(table.name, x, y)
                if orientation is None:
                    continue
                first, second = orientation
                joint = self._catalog.joint_statistic(table.name, first, second)
                p_first = remaining.pop(first)
                p_second = remaining.pop(second)
                factor = joint.selectivity(p_first.a, p_first.b, p_second.a, p_second.b)
                provenance.append(
                    f"joint({first},{second})={factor:.4g} [{type(joint).__name__}]"
                )
                total *= factor
        for column, predicate in remaining.items():
            statistic = self._catalog.column_statistic(table.name, column)
            factor = statistic.selectivity(predicate.a, predicate.b)
            provenance.append(
                f"column({column})={factor:.4g} [{type(statistic).__name__}]"
            )
            total *= factor
        if len(provenance) > 1:
            provenance.append("combined under independence")
        return float(np.clip(total, 0.0, 1.0)), tuple(provenance)

    def cardinality(self, table: Table, predicates: "list[RangePredicate]") -> float:
        """Estimated result rows ``N * sigma``."""
        return self.selectivity(table, predicates) * self._catalog.row_count(table.name)

    def observe_actual(
        self,
        table: Table,
        predicates: "list[RangePredicate]",
        actual_rows: float,
    ) -> QualityRecord:
        """Feed back the executed cardinality of a planned query.

        This is the accuracy counterpart of ``EXPLAIN ANALYZE``: the
        true row count is compared (as a selectivity) against what the
        planner would estimate for the same predicate set, and the pair
        lands in the ``quality.qerror`` / ``quality.abs_error`` series
        keyed by table name.  Returns the computed record whether or
        not telemetry is enabled.
        """
        if actual_rows < 0:
            raise InvalidQueryError(f"actual row count must be >= 0, got {actual_rows}")
        row_count = self._catalog.row_count(table.name)
        estimated = self.selectivity(table, predicates)
        truth = float(actual_rows) / row_count if row_count else 0.0
        return record_quality(estimated, truth, key=table.name)

    def plan(self, table: Table, predicates: "list[RangePredicate]") -> Plan:
        """Choose the cheaper access path under the cost model.

        The returned plan records per-stage wall-clock timings
        (``estimate`` and ``costing``) and the provenance of every
        selectivity factor; a traced run additionally emits
        ``planner.plan`` / ``planner.estimate`` spans and counts
        ``planner.plan`` per produced plan.
        """
        telemetry = get_telemetry()
        with telemetry.span("planner.plan", table=table.name):
            start = time.perf_counter()
            with telemetry.span("planner.estimate", table=table.name):
                selectivity, provenance = self._selectivity_with_provenance(
                    table, predicates
                )
            rows = self._catalog.row_count(table.name)
            estimated = selectivity * rows
            estimate_seconds = time.perf_counter() - start

            start = time.perf_counter()
            seq_cost = rows * self._c_seq
            index_cost = self._c_probe + estimated * self._c_rand
            paths = {"seq scan": seq_cost, "index scan": index_cost}
            winner = min(paths, key=paths.get)
            alternatives = tuple(
                (name, cost) for name, cost in paths.items() if name != winner
            )
            costing_seconds = time.perf_counter() - start
        if telemetry.enabled:
            telemetry.metrics.inc("planner.plan")
            telemetry.metrics.observe("planner.estimate.rows", estimated)
            # Staleness gauges ride along with every traced plan, so a
            # scrape of a serving process shows how old the statistics
            # behind its current plans are.
            self._catalog.staleness_of(table.name)
        return Plan(
            table.name,
            winner,
            estimated,
            paths[winner],
            alternatives,
            provenance=provenance,
            timings=(("estimate", estimate_seconds), ("costing", costing_seconds)),
        )
