"""A miniature optimizer substrate around the estimators.

The paper's opening motivation is System R's cost-based optimizer:
intermediate-result sizes are estimated from per-attribute statistics
to rank execution plans.  This package is that consumer, built small
but real:

* :mod:`repro.db.table` — multi-column tables with exact predicate
  evaluation and sampling.
* :mod:`repro.db.catalog` — ``ANALYZE``: build and cache per-column
  statistics with a pluggable estimator family.
* :mod:`repro.db.planner` — cardinality estimation for conjunctions
  of range predicates (independence or joint 2-D statistics) and a
  two-access-path cost model with ``EXPLAIN`` output.
"""

from repro.db.catalog import Catalog
from repro.db.planner import Plan, Planner, RangePredicate
from repro.db.table import Table

__all__ = ["Catalog", "Plan", "Planner", "RangePredicate", "Table"]
