"""Multi-column tables with exact predicate evaluation.

A :class:`Table` is a named collection of metric columns over declared
domains — just enough relational substrate for the optimizer layer to
be honest: predicates can be executed exactly (ground truth for every
estimate) and sampled consistently (row-aligned across columns, the
way a real ANALYZE scans whole tuples).
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.core.base import InvalidQueryError, InvalidSampleError, validate_query
from repro.data.domain import Interval
from repro.data.relation import resolve_rng


class Table:
    """An in-memory table of metric columns.

    Parameters
    ----------
    name:
        Table name (used in EXPLAIN output).
    columns:
        Mapping of column name to ``(values, domain)``; all columns
        must have the same length.
    """

    def __init__(
        self,
        name: str,
        columns: "dict[str, tuple[np.ndarray, Interval]]",
    ) -> None:
        if not columns:
            raise InvalidSampleError("table needs at least one column")
        self._name = name
        self._domains: dict[str, Interval] = {}
        data: dict[str, np.ndarray] = {}
        length: int | None = None
        for column, (values, domain) in columns.items():
            array = np.asarray(values, dtype=np.float64)
            if array.ndim != 1:
                raise InvalidSampleError(f"column {column!r} must be 1-D")
            if length is None:
                length = array.size
            elif array.size != length:
                raise InvalidSampleError(
                    f"column {column!r} has {array.size} rows, expected {length}"
                )
            if array.size == 0:
                raise InvalidSampleError(f"column {column!r} is empty")
            if not np.all(np.isfinite(array)):
                raise InvalidSampleError(f"column {column!r} contains non-finite values")
            if array.min() < domain.low or array.max() > domain.high:
                raise InvalidSampleError(
                    f"column {column!r} falls outside its domain"
                )
            data[column] = array.copy()
            data[column].flags.writeable = False
            self._domains[column] = domain
        self._data = data
        self._rows = int(length)
        self._fingerprint: str | None = None

    @property
    def name(self) -> str:
        """Table name."""
        return self._name

    @property
    def fingerprint(self) -> str:
        """Content digest of the table data (column names + values).

        Tables are immutable, so the digest is computed once, lazily.
        The statistics cache keys on it: replacing a table's data under
        the same name yields a different fingerprint, which is what
        invalidates previously cached ANALYZE results.
        """
        if self._fingerprint is None:
            digest = 0
            for column, values in self._data.items():
                digest = zlib.crc32(column.encode(), digest)
                digest = zlib.crc32(np.ascontiguousarray(values).tobytes(), digest)
            self._fingerprint = f"{self._rows}-{digest:08x}"
        return self._fingerprint

    @property
    def row_count(self) -> int:
        """Number of rows ``N``."""
        return self._rows

    @property
    def column_names(self) -> list[str]:
        """Column names, declaration order."""
        return list(self._data)

    def domain(self, column: str) -> Interval:
        """Domain of one column."""
        self._check_column(column)
        return self._domains[column]

    def column(self, column: str) -> np.ndarray:
        """Read-only view of one column."""
        self._check_column(column)
        return self._data[column]

    def _check_column(self, column: str) -> None:
        if column not in self._data:
            raise InvalidQueryError(
                f"table {self._name!r} has no column {column!r}; "
                f"has {', '.join(self._data)}"
            )

    def count(self, predicates: "dict[str, tuple[float, float]]") -> int:
        """Exact row count of a conjunction of range predicates."""
        if not predicates:
            return self._rows
        mask = np.ones(self._rows, dtype=bool)
        for column, (a, b) in predicates.items():
            self._check_column(column)
            a, b = validate_query(a, b)
            values = self._data[column]
            mask &= (values >= a) & (values <= b)
        return int(np.count_nonzero(mask))

    def sample_rows(
        self, n: int, seed: "int | np.random.Generator | None" = None
    ) -> "dict[str, np.ndarray]":
        """Row-aligned sample without replacement across all columns."""
        if n <= 0:
            raise InvalidQueryError(f"sample size must be positive, got {n}")
        if n > self._rows:
            raise InvalidQueryError(
                f"cannot draw {n} rows without replacement from {self._rows}"
            )
        rng = resolve_rng(seed)
        index = rng.choice(self._rows, size=n, replace=False)
        return {column: values[index].copy() for column, values in self._data.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self._name!r}, rows={self._rows}, columns={self.column_names})"
