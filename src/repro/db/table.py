"""Multi-column tables with exact predicate evaluation.

A :class:`Table` is a named collection of metric columns over declared
domains — just enough relational substrate for the optimizer layer to
be honest: predicates can be executed exactly (ground truth for every
estimate) and sampled consistently (row-aligned across columns, the
way a real ANALYZE scans whole tuples).

Tables support **mutation with provenance**: :meth:`Table.append` and
:meth:`Table.delete_where` replace the column arrays (the arrays
themselves stay read-only and are swapped with one reference
assignment, so racing readers see a consistent before/after snapshot),
bump a monotone ``statistics_version``, and record the per-column
delta.  The catalog's incremental ANALYZE replays
:meth:`Table.deltas_since` against its mergeable summaries to refresh
statistics in O(delta) instead of rescanning O(n) rows.
"""

from __future__ import annotations

import dataclasses
import zlib

import numpy as np

from repro.core.base import InvalidQueryError, InvalidSampleError, validate_query
from repro.data.domain import Interval
from repro.data.relation import resolve_rng

#: Retained mutation deltas per table; once the log is deeper than
#: this, older entries are dropped and consumers that fell further
#: behind must full-rebuild (``deltas_since`` raises ``StaleDeltaLog``).
MAX_DELTA_LOG = 256


class StaleDeltaLog(InvalidQueryError):
    """The requested delta range was compacted away; rescan instead."""


@dataclasses.dataclass(frozen=True)
class TableDelta:
    """One recorded mutation: the rows appended to or deleted from a table.

    ``version`` is the table's ``statistics_version`` *after* the
    mutation; ``rows`` maps column name to the affected values
    (read-only arrays).
    """

    version: int
    kind: str  # "append" | "delete"
    rows: "dict[str, np.ndarray]"

    @property
    def row_count(self) -> int:
        """Rows affected by this mutation."""
        return int(next(iter(self.rows.values())).size)


def _frozen_copy(array: np.ndarray) -> np.ndarray:
    out = np.ascontiguousarray(array)
    if out is array:
        out = array.copy()
    out.flags.writeable = False
    return out


class Table:
    """An in-memory table of metric columns.

    Parameters
    ----------
    name:
        Table name (used in EXPLAIN output).
    columns:
        Mapping of column name to ``(values, domain)``; all columns
        must have the same length.
    """

    def __init__(
        self,
        name: str,
        columns: "dict[str, tuple[np.ndarray, Interval]]",
    ) -> None:
        if not columns:
            raise InvalidSampleError("table needs at least one column")
        self._name = name
        self._domains: dict[str, Interval] = {}
        data: dict[str, np.ndarray] = {}
        length: int | None = None
        for column, (values, domain) in columns.items():
            array = np.asarray(values, dtype=np.float64)
            if array.ndim != 1:
                raise InvalidSampleError(f"column {column!r} must be 1-D")
            if length is None:
                length = array.size
            elif array.size != length:
                raise InvalidSampleError(
                    f"column {column!r} has {array.size} rows, expected {length}"
                )
            if array.size == 0:
                raise InvalidSampleError(f"column {column!r} is empty")
            if not np.all(np.isfinite(array)):
                raise InvalidSampleError(f"column {column!r} contains non-finite values")
            if array.min() < domain.low or array.max() > domain.high:
                raise InvalidSampleError(
                    f"column {column!r} falls outside its domain"
                )
            data[column] = array.copy()
            data[column].flags.writeable = False
            self._domains[column] = domain
        self._data = data
        self._rows = int(length)
        self._fingerprint: str | None = None
        # Mutation provenance: a monotone statistics version plus a
        # bounded log of per-column deltas (see module docstring).
        self._stats_version = 0
        self._deltas: list[TableDelta] = []
        self._compacted_through = 0

    @property
    def name(self) -> str:
        """Table name."""
        return self._name

    @property
    def fingerprint(self) -> str:
        """Content digest of the table data (column names + values).

        Computed lazily and cached until the next mutation.  The
        statistics cache keys on it: appending or deleting rows (or
        replacing a table's data under the same name) yields a new
        fingerprint, which is what invalidates previously cached
        ANALYZE results.
        """
        if self._fingerprint is None:
            digest = 0
            for column, values in self._data.items():
                digest = zlib.crc32(column.encode(), digest)
                digest = zlib.crc32(np.ascontiguousarray(values).tobytes(), digest)
            self._fingerprint = f"{self._rows}-{digest:08x}"
        return self._fingerprint

    @property
    def statistics_version(self) -> int:
        """Monotone version, bumped by every append/delete."""
        return self._stats_version

    @property
    def row_count(self) -> int:
        """Number of rows ``N``."""
        return self._rows

    @property
    def column_names(self) -> list[str]:
        """Column names, declaration order."""
        return list(self._data)

    def domain(self, column: str) -> Interval:
        """Domain of one column."""
        self._check_column(column)
        return self._domains[column]

    def column(self, column: str) -> np.ndarray:
        """Read-only view of one column."""
        self._check_column(column)
        return self._data[column]

    def _check_column(self, column: str) -> None:
        if column not in self._data:
            raise InvalidQueryError(
                f"table {self._name!r} has no column {column!r}; "
                f"has {', '.join(self._data)}"
            )

    def append(self, rows: "dict[str, np.ndarray]") -> int:
        """Append rows (one aligned array per column); returns the new version.

        All declared columns must be present, the arrays equal-length,
        finite, and inside their domains.  The column arrays are
        rebuilt and installed with one reference swap, the cached
        fingerprint is invalidated, the statistics version is bumped
        and the delta is recorded for :meth:`deltas_since`.
        """
        fresh = self._validate_mutation(rows)
        data = {
            column: np.concatenate([values, fresh[column]])
            for column, values in self._data.items()
        }
        for values in data.values():
            values.flags.writeable = False
        return self._install(data, "append", fresh)

    def delete_where(self, predicates: "dict[str, tuple[float, float]]") -> int:
        """Delete rows matching a conjunction of range predicates.

        Returns the number of rows deleted (0 leaves version and log
        untouched).  Deleting every row is rejected — tables must stay
        non-empty.
        """
        if not predicates:
            raise InvalidQueryError("delete_where requires at least one predicate")
        data = self._data
        mask = np.ones(self._rows, dtype=bool)
        for column, (a, b) in predicates.items():
            self._check_column(column)
            a, b = validate_query(a, b)
            mask &= (data[column] >= a) & (data[column] <= b)
        removed = int(np.count_nonzero(mask))
        if removed == 0:
            return 0
        if removed == self._rows:
            raise InvalidQueryError(
                f"delete_where would empty table {self._name!r}; "
                "drop the table instead"
            )
        deleted = {column: _frozen_copy(values[mask]) for column, values in data.items()}
        kept = {column: _frozen_copy(values[~mask]) for column, values in data.items()}
        self._install(kept, "delete", deleted)
        return removed

    def deltas_since(self, version: int) -> "list[TableDelta]":
        """Mutations after ``version``, oldest first.

        Raises :class:`StaleDeltaLog` when the log was compacted past
        the requested version — the caller fell too far behind and
        must rebuild from a full scan.
        """
        if version > self._stats_version:
            raise InvalidQueryError(
                f"version {version} is ahead of table {self._name!r} "
                f"(at {self._stats_version})"
            )
        if version < self._compacted_through:
            raise StaleDeltaLog(
                f"deltas after version {version} were compacted "
                f"(log starts at {self._compacted_through}); rescan required"
            )
        return [delta for delta in self._deltas if delta.version > version]

    def _validate_mutation(self, rows: "dict[str, np.ndarray]") -> "dict[str, np.ndarray]":
        missing = set(self._data) - set(rows)
        extra = set(rows) - set(self._data)
        if missing or extra:
            raise InvalidSampleError(
                f"appended rows must cover exactly the table's columns; "
                f"missing {sorted(missing)}, unexpected {sorted(extra)}"
            )
        fresh: dict[str, np.ndarray] = {}
        length: int | None = None
        for column in self._data:
            array = np.asarray(rows[column], dtype=np.float64)
            if array.ndim != 1 or array.size == 0:
                raise InvalidSampleError(
                    f"appended column {column!r} must be a non-empty 1-D array"
                )
            if length is None:
                length = array.size
            elif array.size != length:
                raise InvalidSampleError(
                    f"appended column {column!r} has {array.size} rows, expected {length}"
                )
            if not np.all(np.isfinite(array)):
                raise InvalidSampleError(f"appended column {column!r} contains non-finite values")
            domain = self._domains[column]
            if array.min() < domain.low or array.max() > domain.high:
                raise InvalidSampleError(f"appended column {column!r} falls outside its domain")
            fresh[column] = _frozen_copy(array)
        return fresh

    def _install(
        self, data: "dict[str, np.ndarray]", kind: str, affected: "dict[str, np.ndarray]"
    ) -> int:
        self._data = data
        self._rows = int(next(iter(data.values())).size)
        self._fingerprint = None
        self._stats_version += 1
        self._deltas.append(TableDelta(self._stats_version, kind, affected))
        if len(self._deltas) > MAX_DELTA_LOG:
            trimmed = self._deltas[-MAX_DELTA_LOG:]
            self._compacted_through = trimmed[0].version - 1
            self._deltas = trimmed
        return self._stats_version

    def count(self, predicates: "dict[str, tuple[float, float]]") -> int:
        """Exact row count of a conjunction of range predicates."""
        data = self._data
        rows = next(iter(data.values())).size
        if not predicates:
            return int(rows)
        mask = np.ones(rows, dtype=bool)
        for column, (a, b) in predicates.items():
            self._check_column(column)
            a, b = validate_query(a, b)
            mask &= (data[column] >= a) & (data[column] <= b)
        return int(np.count_nonzero(mask))

    def sample_rows(
        self, n: int, seed: "int | np.random.Generator | None" = None
    ) -> "dict[str, np.ndarray]":
        """Row-aligned sample without replacement across all columns."""
        data = self._data
        rows = next(iter(data.values())).size
        if n <= 0:
            raise InvalidQueryError(f"sample size must be positive, got {n}")
        if n > rows:
            raise InvalidQueryError(
                f"cannot draw {n} rows without replacement from {rows}"
            )
        rng = resolve_rng(seed)
        index = rng.choice(rows, size=n, replace=False)
        return {column: values[index].copy() for column, values in data.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self._name!r}, rows={self._rows}, columns={self.column_names})"
