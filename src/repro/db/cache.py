"""Bounded, telemetry-instrumented caches for the database layer.

A real system never rebuilds statistics it already holds: ANALYZE
results are kept until the underlying data changes, and hot planner
estimates are memoized.  :class:`LRUCache` is the shared building
block — a bounded least-recently-used map whose lookups surface as
``cache.hit`` / ``cache.miss`` telemetry counters (plus per-cache
``cache.hit.<name>`` segments, see docs/OBSERVABILITY.md) so traced
runs show exactly how much rebuilding was avoided.

Thread safety: all operations take an internal lock, so caches can be
shared by the parallel experiment harness workers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.telemetry import get_telemetry

#: Sentinel distinguishing "not cached" from a cached ``None``.
MISS = object()


class LRUCache:
    """A bounded least-recently-used cache with telemetry counters.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently *used* entry is
        evicted first.
    name:
        Cache name used in the telemetry segment
        (``cache.hit.<name>`` / ``cache.miss.<name>``).
    """

    def __init__(self, capacity: int, name: str) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._name = name
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        # In-flight get_or_build builds by key; waiters block on the
        # event instead of duplicating the build (single-flight).
        self._building: "dict[Hashable, threading.Event]" = {}
        self._hits = 0
        self._misses = 0

    @property
    def name(self) -> str:
        """Cache name (telemetry segment)."""
        return self._name

    @property
    def capacity(self) -> int:
        """Maximum number of entries."""
        return self._capacity

    @property
    def hits(self) -> int:
        """Lookups served from the cache since creation/clear."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that found nothing since creation/clear."""
        return self._misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (``nan`` before any).

        The local equivalent of the ``cache.hit.<name>`` /
        ``cache.miss.<name>`` counter ratio; SLO hit-rate floors read
        the same quantity from a registry snapshot.
        """
        lookups = self._hits + self._misses
        return self._hits / lookups if lookups else float("nan")

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable) -> Any:
        """The cached value, or :data:`MISS`; records hit/miss telemetry."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                value = self._data[key]
                self._hits += 1
                hit = True
            else:
                value = MISS
                self._misses += 1
                hit = False
        self._record(hit)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the oldest if full."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self._capacity:
                self._data.popitem(last=False)

    def get_or_build(self, key: Hashable, build: Callable[[], Any]) -> Any:
        """The cached value for ``key``, building and caching on a miss.

        Single-flight: concurrent callers missing on the same key run
        ``build`` once — the first caller builds while the rest wait on
        an event and read the cached result.  ``build`` runs *outside*
        the cache lock (it may be arbitrarily slow — an ANALYZE pass),
        so other keys stay serviceable throughout.

        A raising builder is contained: the exception propagates to
        the builder's caller, **no** partial entry is cached, no lock
        or in-flight marker is left behind, and exactly one waiter is
        promoted to retry the build (the rest keep waiting on the new
        attempt).
        """
        while True:
            value = self.get(key)
            if value is not MISS:
                return value
            with self._lock:
                if key in self._data:
                    # Filled between the probe and now; re-probe so the
                    # hit is tallied like any other.
                    continue
                waiter = self._building.get(key)
                if waiter is None:
                    self._building[key] = threading.Event()
                    break
            waiter.wait()
        try:
            value = build()
            self.put(key, value)
            return value
        finally:
            # Runs on success *and* on a raising builder: drop the
            # in-flight marker and wake waiters, who either hit the
            # fresh entry or (after a failure) elect a new builder.
            with self._lock:
                event = self._building.pop(key, None)
            if event is not None:
                event.set()

    def evict(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``.

        Returns the number of entries removed.  This is the explicit
        invalidation hook: the catalog drops a table's statistics when
        told the table's data changed.
        """
        with self._lock:
            doomed = [key for key in self._data if predicate(key)]
            for key in doomed:
                del self._data[key]
        return len(doomed)

    def clear(self) -> None:
        """Drop all entries and reset the local hit/miss tallies."""
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0

    def _record(self, hit: bool) -> None:
        telemetry = get_telemetry()
        if not telemetry.enabled:
            return
        verb = "hit" if hit else "miss"
        telemetry.metrics.inc(f"cache.{verb}")
        telemetry.metrics.inc(f"cache.{verb}.{self._name}")
