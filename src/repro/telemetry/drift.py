"""Drift and staleness monitors for built statistics.

Every estimator in this codebase is build-once: an ANALYZE draws a
sample, builds a statistic, and the statistic silently ages as the
underlying data changes.  Before incremental maintenance can *react*
to change, something has to *measure* it — that is this module:

* :class:`StalenessMonitor` — per-table gauges for how old a table's
  statistics are (``drift.staleness.age.<table>``, seconds since the
  last ANALYZE) and how many catalog versions behind they have fallen
  (``drift.staleness.lag.<table>``).
* :class:`DriftMonitor` — a distribution-shift statistic per
  (table, column): the two-sample Kolmogorov–Smirnov distance between
  the *build-time sample* (the baseline ANALYZE actually used) and a
  bounded :class:`ReservoirSample` of recently observed values,
  emitted as the ``drift.ks.<table>.<column>`` gauge.  KS distance is
  in [0, 1]; 0 means the recent data looks exactly like what the
  statistic was built from, and a sustained high value is the signal
  a selective-rebuild policy consumes.

Both monitors are thread-safe and cheap enough to sit on the serving
path; gauges are only emitted while telemetry is enabled.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import zlib
from typing import Mapping

import numpy as np

from repro.telemetry.runtime import get_telemetry

#: Default number of recent values retained per (table, column).
RESERVOIR_CAPACITY = 512


class ReservoirSample:
    """A bounded uniform sample of a stream (Vitter's algorithm R).

    Every value ever offered has equal probability of being in the
    reservoir, so the KS comparison sees an unbiased recent-history
    sample at O(capacity) memory.  Seeded explicitly — reproducibility
    is a repo-wide invariant (see DESIGN.md) — and lock-guarded so
    serving threads can feed one reservoir concurrently.
    """

    def __init__(self, capacity: int = RESERVOIR_CAPACITY, seed: int = 0) -> None:
        if capacity < 2:
            raise ValueError(f"reservoir capacity must be >= 2, got {capacity}")
        self._capacity = int(capacity)
        self._rng = np.random.default_rng(seed)
        self._values: list[float] = []
        self._seen = 0
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        """Maximum number of retained values."""
        return self._capacity

    @property
    def seen(self) -> int:
        """Total values offered so far."""
        with self._lock:
            return self._seen

    def add(self, value: float) -> None:
        """Offer one value to the reservoir."""
        with self._lock:
            self._add_locked(float(value))

    def extend(self, values: np.ndarray) -> None:
        """Offer a batch of values under one lock acquisition."""
        flat = np.asarray(values, dtype=np.float64).ravel()
        with self._lock:
            for value in flat:
                self._add_locked(float(value))

    def _add_locked(self, value: float) -> None:
        self._seen += 1
        if len(self._values) < self._capacity:
            self._values.append(value)
            return
        slot = int(self._rng.integers(0, self._seen))
        if slot < self._capacity:
            self._values[slot] = value

    def values(self) -> np.ndarray:
        """The retained sample (copy)."""
        with self._lock:
            return np.asarray(self._values, dtype=np.float64)


def ks_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Kolmogorov–Smirnov distance ``sup |F_a - F_b|``.

    Both arrays must be non-empty; the result is in [0, 1].
    """
    a = np.sort(np.asarray(a, dtype=np.float64).ravel())
    b = np.sort(np.asarray(b, dtype=np.float64).ravel())
    if a.size == 0 or b.size == 0:
        raise ValueError("ks_distance needs two non-empty samples")
    # Evaluate both empirical CDFs at every jump point of either.
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


@dataclasses.dataclass(frozen=True)
class DriftReading:
    """One drift measurement for a (table, column) pair."""

    table: str
    column: str
    ks: float
    baseline_size: int
    recent_seen: int


class DriftMonitor:
    """Per-(table, column) distribution-shift tracking.

    ``set_baseline`` stores the sample a statistic was built from;
    ``ingest`` feeds recently observed attribute values into a bounded
    reservoir and (when telemetry is enabled) emits the current KS
    distance as the ``drift.ks.<table>.<column>`` gauge plus a
    ``drift.values`` ingest counter.
    """

    def __init__(
        self, capacity: int = RESERVOIR_CAPACITY, min_recent: int = 16
    ) -> None:
        if min_recent < 2:
            raise ValueError(f"min_recent must be >= 2, got {min_recent}")
        self._capacity = int(capacity)
        self._min_recent = int(min_recent)
        self._baselines: dict[tuple[str, str], np.ndarray] = {}
        self._reservoirs: dict[tuple[str, str], ReservoirSample] = {}
        self._lock = threading.Lock()

    def set_baseline(self, table: str, column: str, sample: np.ndarray) -> None:
        """Store the build-time sample and restart the recent window."""
        baseline = np.sort(np.asarray(sample, dtype=np.float64).ravel())
        if baseline.size == 0:
            raise ValueError("baseline sample must be non-empty")
        key = (table, column)
        with self._lock:
            self._baselines[key] = baseline
            # Deterministic per-key reservoir seed (crc32, not hash():
            # str hashing is salted per process): same ANALYZE order,
            # same drift readings.
            self._reservoirs[key] = ReservoirSample(
                self._capacity, seed=zlib.crc32(f"{table}|{column}|drift".encode()) & 0x7FFFFFFF
            )

    def has_baseline(self, table: str, column: str) -> bool:
        """Whether a build-time baseline is stored for the pair."""
        with self._lock:
            return (table, column) in self._baselines

    def ingest(self, table: str, column: str, values: np.ndarray) -> "DriftReading | None":
        """Feed recently observed values; returns the reading, if any.

        Values offered before a baseline exists are dropped (there is
        nothing to compare against yet).  A reading is produced once
        the reservoir holds at least ``min_recent`` values.
        """
        key = (table, column)
        with self._lock:
            reservoir = self._reservoirs.get(key)
        if reservoir is None:
            return None
        flat = np.asarray(values, dtype=np.float64).ravel()
        reservoir.extend(flat)
        telemetry = get_telemetry()
        if telemetry.enabled and flat.size:
            telemetry.metrics.inc("drift.values", flat.size)
        reading = self.reading(table, column)
        if reading is not None and telemetry.enabled:
            telemetry.metrics.set_gauge(f"drift.ks.{table}.{column}", reading.ks)
        return reading

    def reading(self, table: str, column: str) -> "DriftReading | None":
        """The current drift measurement, or ``None`` if underfed."""
        key = (table, column)
        with self._lock:
            baseline = self._baselines.get(key)
            reservoir = self._reservoirs.get(key)
        if baseline is None or reservoir is None:
            return None
        recent = reservoir.values()
        if recent.size < self._min_recent:
            return None
        return DriftReading(
            table=table,
            column=column,
            ks=ks_distance(baseline, recent),
            baseline_size=int(baseline.size),
            recent_seen=reservoir.seen,
        )

    def snapshot(self) -> dict[str, float]:
        """All current KS readings, keyed ``<table>.<column>``."""
        with self._lock:
            keys = list(self._baselines)
        out: dict[str, float] = {}
        for table, column in keys:
            reading = self.reading(table, column)
            if reading is not None:
                out[f"{table}.{column}"] = reading.ks
        return out


@dataclasses.dataclass(frozen=True)
class Staleness:
    """How stale one table's statistics are."""

    table: str
    age_seconds: float
    version_lag: int


class StalenessMonitor:
    """Tracks per-table statistics age and catalog-version lag.

    ``on_analyze`` stamps a rebuild; ``observe`` computes the current
    staleness and (when telemetry is enabled) emits the
    ``drift.staleness.age.<table>`` / ``drift.staleness.lag.<table>``
    gauges.
    """

    def __init__(self) -> None:
        self._analyzed_at: dict[str, float] = {}
        self._analyzed_version: dict[str, int] = {}
        self._lock = threading.Lock()

    def on_analyze(
        self, table: str, version: int, timestamp: float | None = None
    ) -> None:
        """Record that ``table`` was analyzed at catalog ``version``."""
        with self._lock:
            self._analyzed_at[table] = time.time() if timestamp is None else timestamp
            self._analyzed_version[table] = int(version)

    def forget(self, table: str) -> None:
        """Drop the table's stamps (statistics were invalidated)."""
        with self._lock:
            self._analyzed_at.pop(table, None)
            self._analyzed_version.pop(table, None)

    def observe(
        self, table: str, current_version: int, now: float | None = None
    ) -> "Staleness | None":
        """Current staleness of ``table``; ``None`` if never analyzed."""
        with self._lock:
            analyzed_at = self._analyzed_at.get(table)
            analyzed_version = self._analyzed_version.get(table)
        if analyzed_at is None or analyzed_version is None:
            return None
        staleness = Staleness(
            table=table,
            age_seconds=(time.time() if now is None else now) - analyzed_at,
            version_lag=max(0, int(current_version) - analyzed_version),
        )
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.set_gauge(
                f"drift.staleness.age.{table}", staleness.age_seconds
            )
            telemetry.metrics.set_gauge(
                f"drift.staleness.lag.{table}", float(staleness.version_lag)
            )
        return staleness

    def snapshot(self, versions: Mapping[str, int]) -> dict[str, Staleness]:
        """Staleness of every stamped table given current versions."""
        with self._lock:
            tables = list(self._analyzed_at)
        out: dict[str, Staleness] = {}
        for table in tables:
            staleness = self.observe(table, versions.get(table, 0))
            if staleness is not None:
                out[table] = staleness
        return out
