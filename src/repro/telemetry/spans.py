"""Tracing spans: nested wall-clock (and optional memory) records.

A :class:`SpanRecord` is one timed region of code; nesting follows the
dynamic call structure (``harness.experiment`` contains many
``estimator.build`` spans which may contain further builds of inner
estimators).  Records are plain data — the lifecycle (start/stop,
stack maintenance) lives in :class:`repro.telemetry.runtime.Telemetry`.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Mapping


@dataclasses.dataclass
class SpanRecord:
    """One completed (or in-flight) traced region.

    Attributes
    ----------
    name:
        Dotted span name (``estimator.build``, ``planner.plan``, ...).
    tags:
        Small str→str map qualifying the span (estimator class,
        dataset name, ...).
    start:
        ``time.perf_counter()`` at entry (process-relative seconds).
    duration:
        Wall-clock seconds; ``None`` while the span is still open.
    memory_peak:
        Peak ``tracemalloc`` bytes observed inside the span when
        memory tracing is on, else ``None``.  Correct under nesting
        (a parent's peak always covers its children's intervals);
        still approximate across concurrently tracing threads, since
        the watermark is process-global.
    children:
        Spans opened (and closed) while this one was open.
    """

    name: str
    tags: Mapping[str, str] = dataclasses.field(default_factory=dict)
    start: float = 0.0
    duration: float | None = None
    memory_peak: int | None = None
    children: list["SpanRecord"] = dataclasses.field(default_factory=list)

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly nested rendering."""
        out: dict[str, object] = {"name": self.name}
        if self.tags:
            out["tags"] = dict(self.tags)
        out["duration_s"] = self.duration
        if self.memory_peak is not None:
            out["memory_peak_bytes"] = self.memory_peak
        if self.children:
            out["children"] = [child.as_dict() for child in self.children]
        return out

    def iter_all(self) -> "Iterator[SpanRecord]":
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_all()

    def render(self, indent: int = 0) -> str:
        """One-line-per-span indented tree rendering."""
        label = self.name
        if self.tags:
            label += "[" + ", ".join(f"{k}={v}" for k, v in self.tags.items()) + "]"
        duration = "..." if self.duration is None else f"{self.duration * 1e3:.3f} ms"
        line = f"{'  ' * indent}{label}  {duration}"
        if self.memory_peak is not None:
            line += f"  peak={self.memory_peak / 1024:.1f} KiB"
        lines = [line]
        lines.extend(child.render(indent + 1) for child in self.children)
        return "\n".join(lines)
