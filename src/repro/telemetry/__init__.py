"""Telemetry: tracing spans, metrics, and run manifests.

The estimation stack is instrumented end to end — estimator
construction and queries (:mod:`repro.core.base`), the planner
(:mod:`repro.db.planner`), the experiment harness
(:mod:`repro.experiments`) and the online aggregation stream
(:mod:`repro.online`) all report into one process-global
:class:`Telemetry` object.  Telemetry is **off by default** and the
disabled path is a single attribute check, so the instrumented code
pays near-zero overhead until someone opts in::

    from repro import telemetry

    with telemetry.session(trace_memory=False) as t:
        est = estimators.kernel(sample, domain)
        est.selectivity(10.0, 20.0)
    print(t.render_spans())          # span tree with wall-clock timings
    print(t.snapshot()["metrics"])   # counters + value histograms

Metric names are dotted, lowercase, ``subsystem.noun[.verb]``
(``estimator.build``, ``planner.estimate``, ``harness.experiment``,
``online.batch`` — see DESIGN.md §"Telemetry conventions").

The CLI front end is ``python -m repro <exp> --trace`` (writes a JSON
run manifest under ``benchmarks/reports/manifests/``) and
``python -m repro stats`` (aggregates existing manifests).  See
``docs/OBSERVABILITY.md``.
"""

from repro.telemetry.metrics import MetricsRegistry, ValueSummary
from repro.telemetry.sketch import QuantileSketch
from repro.telemetry.spans import SpanRecord
from repro.telemetry.runtime import (
    Telemetry,
    get_telemetry,
    set_telemetry,
    session,
)
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA,
    aggregate_manifests,
    build_manifest,
    load_manifests,
    manifest_dir,
    write_manifest,
)
from repro.telemetry.bench import (
    BENCH_KINDS,
    HIGHER_IS_BETTER_KINDS,
    BenchmarkExporter,
    entry_direction,
    entry_kind,
)
from repro.telemetry.quality import (
    QERROR_FLOOR,
    QualityRecord,
    QualityTracker,
    qerror,
    qerrors,
    record_quality,
    record_quality_batch,
)
from repro.telemetry.drift import (
    DriftMonitor,
    DriftReading,
    ReservoirSample,
    Staleness,
    StalenessMonitor,
    ks_distance,
)
from repro.telemetry.slo import (
    DEFAULT_SLOS,
    SERVING_SLOS,
    SLOResult,
    SLOSpec,
    evaluate_bench,
    evaluate_registry,
    evaluate_snapshot,
    max_burn,
    render_report,
)
from repro.telemetry.export import (
    JsonlEventLog,
    bench_exposition,
    default_event_log,
    iter_events,
    parse_exposition,
    prometheus_exposition,
)

__all__ = [
    "BENCH_KINDS",
    "BenchmarkExporter",
    "DEFAULT_SLOS",
    "HIGHER_IS_BETTER_KINDS",
    "DriftMonitor",
    "DriftReading",
    "JsonlEventLog",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "QERROR_FLOOR",
    "QualityRecord",
    "QualityTracker",
    "QuantileSketch",
    "ReservoirSample",
    "SERVING_SLOS",
    "SLOResult",
    "SLOSpec",
    "SpanRecord",
    "Staleness",
    "StalenessMonitor",
    "Telemetry",
    "ValueSummary",
    "aggregate_manifests",
    "bench_exposition",
    "build_manifest",
    "default_event_log",
    "entry_direction",
    "entry_kind",
    "evaluate_bench",
    "evaluate_registry",
    "evaluate_snapshot",
    "get_telemetry",
    "iter_events",
    "ks_distance",
    "max_burn",
    "load_manifests",
    "manifest_dir",
    "parse_exposition",
    "prometheus_exposition",
    "qerror",
    "qerrors",
    "record_quality",
    "record_quality_batch",
    "render_report",
    "session",
    "set_telemetry",
    "write_manifest",
]
