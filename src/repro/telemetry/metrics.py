"""Counters, gauges and value series with bounded-memory summaries.

:class:`MetricsRegistry` keeps three maps — monotonic counters,
last-write-wins gauges and observed-value series — plus a timing
context manager.  A value series keeps its raw observations only up to
:data:`RAW_SAMPLE_CAP` (percentiles are exact there); past the cap the
raw samples are dropped and the series is summarized by a
:class:`~repro.telemetry.sketch.QuantileSketch`, so a long-lived
serving registry holds O(1) memory per series no matter how many
observations stream through.  Count, total, min and max stay exact in
both regimes.

Registries are thread-safe (the parallel experiment harness records
from worker threads into one shared instance) and mergeable
(:meth:`MetricsRegistry.merge` folds per-worker registries into one).
"""

from __future__ import annotations

import dataclasses
import math
import threading
import time
from contextlib import contextmanager
from typing import Iterable, Iterator, Mapping

from repro.telemetry.sketch import QuantileSketch

#: Percentiles reported by :meth:`MetricsRegistry.summary`.
PERCENTILES = (50.0, 90.0, 99.0)

#: Raw observations kept per series before falling back to the sketch.
RAW_SAMPLE_CAP = 8_192


def _percentile(ordered: list[float], q: float) -> float:
    """Linear-interpolation percentile of a pre-sorted list."""
    if not ordered:
        return math.nan
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclasses.dataclass(frozen=True)
class ValueSummary:
    """Summary statistics of one observed-value series.

    ``exact`` is ``True`` while the series still holds all raw
    observations (percentiles are interpolated exactly) and ``False``
    once it spilled to the quantile sketch (percentiles are then
    within the sketch's relative-accuracy bound, 1 % by default).
    """

    count: int
    total: float
    mean: float
    min: float
    max: float
    p50: float
    p90: float
    p99: float
    exact: bool = True

    def as_dict(self) -> dict[str, object]:
        """Plain-dict rendering (JSON-friendly)."""
        return dataclasses.asdict(self)


class _Series:
    """One value series: exact scalars + capped raw samples + sketch."""

    __slots__ = ("count", "total", "min", "max", "raw", "sketch")

    def __init__(self, relative_accuracy: float) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.raw: list[float] | None = []
        self.sketch = QuantileSketch(relative_accuracy)

    def observe(self, value: float, cap: int) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.sketch.add(value)
        if self.raw is not None:
            self.raw.append(value)
            if len(self.raw) > cap:
                # Spill: past the cap only the sketch summarizes.
                self.raw = None

    def freeze(self) -> "_Series":
        """A consistent copy for lock-free summarization."""
        clone = _Series.__new__(_Series)
        clone.count = self.count
        clone.total = self.total
        clone.min = self.min
        clone.max = self.max
        clone.raw = None if self.raw is None else list(self.raw)
        clone.sketch = self.sketch.copy()
        return clone

    def merge(self, other: "_Series", cap: int) -> None:
        """Fold a frozen copy of another series into this one."""
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.sketch.merge(other.sketch)
        if self.raw is not None and other.raw is not None:
            self.raw.extend(other.raw)
            if len(self.raw) > cap:
                self.raw = None
        else:
            self.raw = None

    def summary(self) -> ValueSummary:
        exact = self.raw is not None
        if exact:
            ordered = sorted(self.raw or ())
            percentiles = {q: _percentile(ordered, q) for q in PERCENTILES}
        else:
            percentiles = {q: self.sketch.percentile(q) for q in PERCENTILES}
        return ValueSummary(
            count=self.count,
            total=float(self.total),
            mean=float(self.total / self.count) if self.count else math.nan,
            min=self.min,
            max=self.max,
            p50=percentiles[50.0],
            p90=percentiles[90.0],
            p99=percentiles[99.0],
            exact=exact,
        )


class MetricsRegistry:
    """Named counters, gauges and observed-value series.

    Counters answer "how many times" (``inc``); gauges answer "what is
    the level right now" (``set_gauge``); value series answer "how
    large / how long" (``observe``, ``time``) and summarize to
    count/total/mean/min/max and the :data:`PERCENTILES` — exactly up
    to ``raw_sample_cap`` observations, sketch-approximated (and
    O(1)-memory) beyond.

    ``reset()`` drops everything recorded while keeping the
    configuration, the hook a long-lived serving registry uses between
    scrape windows.
    """

    def __init__(
        self,
        raw_sample_cap: int = RAW_SAMPLE_CAP,
        relative_accuracy: float = 0.01,
    ) -> None:
        if raw_sample_cap < 1:
            raise ValueError(f"raw_sample_cap must be >= 1, got {raw_sample_cap}")
        self._cap = int(raw_sample_cap)
        self._accuracy = float(relative_accuracy)
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._values: dict[str, _Series] = {}
        # Guards all maps: the parallel experiment harness records
        # metrics from worker threads into one shared registry.
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + float(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def add_gauge(self, name: str, delta: float) -> float:
        """Adjust gauge ``name`` by ``delta`` atomically; returns the level.

        The read-modify-write happens under the registry lock, so
        concurrent adjusters (e.g. in-flight request tracking in the
        serving tier) cannot lose updates the way a ``gauge`` +
        ``set_gauge`` pair would.  An unset gauge starts from 0.
        """
        with self._lock:
            level = self._gauges.get(name, 0.0) + float(delta)
            self._gauges[name] = level
            return level

    def observe(self, name: str, value: float) -> None:
        """Append one observation to the value series ``name``."""
        with self._lock:
            series = self._values.get(name)
            if series is None:
                series = self._values[name] = _Series(self._accuracy)
            series.observe(float(value), self._cap)

    def observe_many(self, name: str, values: Iterable[float]) -> None:
        """Append a batch of observations under one lock acquisition."""
        with self._lock:
            series = self._values.get(name)
            if series is None:
                series = self._values[name] = _Series(self._accuracy)
            for value in values:
                series.observe(float(value), self._cap)

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Observe the wall-clock duration of the ``with`` body (seconds)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- reading ------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> float:
        """Current value of gauge ``name`` (``nan`` if never set)."""
        with self._lock:
            return self._gauges.get(name, math.nan)

    def values(self, name: str) -> tuple[float, ...]:
        """Raw observations of series ``name`` still retained.

        Empty for unknown series *and* for series that spilled past the
        raw-sample cap (use :meth:`summary` for those).
        """
        with self._lock:
            series = self._values.get(name)
            if series is None or series.raw is None:
                return ()
            return tuple(series.raw)

    def series_names(self) -> tuple[str, ...]:
        """Names of all value series, sorted."""
        with self._lock:
            return tuple(sorted(self._values))

    def summary(self, name: str) -> ValueSummary:
        """Summary statistics of series ``name``.

        Raises
        ------
        KeyError
            If nothing was ever observed under ``name``.
        """
        with self._lock:
            series = self._values.get(name)
            frozen = None if series is None else series.freeze()
        if frozen is None or frozen.count == 0:
            raise KeyError(f"no observations recorded under {name!r}")
        return frozen.summary()

    def snapshot(self) -> dict[str, Mapping[str, object]]:
        """Everything recorded, as plain nested dicts.

        Atomic: counters, gauges and every series are captured under a
        single lock acquisition, so concurrent ``observe``/``inc``
        calls cannot tear the view (a counter and its value series
        always agree).
        """
        with self._lock:
            counters = dict(sorted(self._counters.items()))
            gauges = dict(sorted(self._gauges.items()))
            frozen = {name: self._values[name].freeze() for name in sorted(self._values)}
        return {
            "counters": counters,
            "gauges": gauges,
            "values": {name: series.summary().as_dict() for name, series in frozen.items()},
        }

    # -- lifecycle ----------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's recordings into this one.

        Counters add, value series merge (sketches merge losslessly at
        their shared resolution), gauges take the other registry's
        value.  ``other`` is left unchanged; both sides may be observed
        into concurrently — each side's lock is held only while its own
        state is touched, never both at once.
        """
        if other is self:
            return
        with other._lock:
            counters = dict(other._counters)
            gauges = dict(other._gauges)
            frozen = {name: series.freeze() for name, series in other._values.items()}
        with self._lock:
            for name, amount in counters.items():
                self._counters[name] = self._counters.get(name, 0.0) + amount
            self._gauges.update(gauges)
            for name, series in frozen.items():
                mine = self._values.get(name)
                if mine is None:
                    self._values[name] = series
                else:
                    mine.merge(series, self._cap)

    def reset(self) -> None:
        """Drop all counters, gauges and observations (keeps config)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._values.clear()
