"""Counters, timers and value histograms with percentile summaries.

:class:`MetricsRegistry` is deliberately small: two maps (monotonic
counters, observed-value series) plus a timing context manager.  Raw
observations are kept so percentiles are exact; the estimation
workloads this instruments record at most a few thousand observations
per name, so memory is not a concern.
"""

from __future__ import annotations

import dataclasses
import math
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Mapping

#: Percentiles reported by :meth:`MetricsRegistry.summary`.
PERCENTILES = (50.0, 90.0, 99.0)


def _percentile(ordered: list[float], q: float) -> float:
    """Linear-interpolation percentile of a pre-sorted list."""
    if not ordered:
        return math.nan
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclasses.dataclass(frozen=True)
class ValueSummary:
    """Summary statistics of one observed-value series."""

    count: int
    total: float
    mean: float
    min: float
    max: float
    p50: float
    p90: float
    p99: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict rendering (JSON-friendly)."""
        return dataclasses.asdict(self)


class MetricsRegistry:
    """Named counters and observed-value series.

    Counters answer "how many times" (``inc``); value series answer
    "how large / how long" (``observe``, ``time``) and summarize to
    count/total/mean/min/max and the :data:`PERCENTILES`.
    """

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._values: dict[str, list[float]] = {}
        # Guards both maps: the parallel experiment harness records
        # metrics from worker threads into one shared registry.
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + float(amount)

    def observe(self, name: str, value: float) -> None:
        """Append one observation to the value series ``name``."""
        with self._lock:
            self._values.setdefault(name, []).append(float(value))

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Observe the wall-clock duration of the ``with`` body (seconds)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- reading ------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    def values(self, name: str) -> tuple[float, ...]:
        """Raw observations of series ``name`` (empty if unknown)."""
        with self._lock:
            return tuple(self._values.get(name, ()))

    def summary(self, name: str) -> ValueSummary:
        """Summary statistics of series ``name``.

        Raises
        ------
        KeyError
            If nothing was ever observed under ``name``.
        """
        with self._lock:
            series = list(self._values.get(name, ()))
        if not series:
            raise KeyError(f"no observations recorded under {name!r}")
        ordered = sorted(series)
        return ValueSummary(
            count=len(ordered),
            total=float(sum(ordered)),
            mean=float(sum(ordered) / len(ordered)),
            min=ordered[0],
            max=ordered[-1],
            p50=_percentile(ordered, 50.0),
            p90=_percentile(ordered, 90.0),
            p99=_percentile(ordered, 99.0),
        )

    def snapshot(self) -> dict[str, Mapping[str, object]]:
        """Everything recorded, as plain nested dicts."""
        with self._lock:
            counters = dict(sorted(self._counters.items()))
            names = sorted(self._values)
        return {
            "counters": counters,
            "values": {name: self.summary(name).as_dict() for name in names},
        }

    def reset(self) -> None:
        """Drop all counters and observations."""
        with self._lock:
            self._counters.clear()
            self._values.clear()
