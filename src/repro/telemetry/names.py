"""The canonical registry of telemetry span and metric names.

Every dotted name the instrumented code records under — span names,
counter names, observed-value series — is declared here, in one place.
The registry exists for two consumers:

* **humans** reading ``docs/OBSERVABILITY.md`` and dashboards, who need
  one authoritative list of what the system emits, and
* the **static analyzer** (:mod:`repro.analysis`, rule
  ``telemetry-naming``), which checks every string literal passed to
  ``metrics.inc`` / ``metrics.observe`` / ``metrics.time`` /
  ``telemetry.span`` against this registry at lint time, so a typo like
  ``harness.cel`` is caught in CI instead of silently splitting a
  metric series.

Names follow DESIGN.md §"Telemetry conventions": dotted, lowercase,
``subsystem.noun[.verb]``.  Names with a dynamic last segment (a class
name, a cell tag, a cache name) are registered as *prefixes*: the
static part up to the dynamic segment must match a
:data:`REGISTERED_PREFIXES` entry.

Adding a new instrumentation site therefore takes two lines: the call
site and the registry entry.  The analyzer fails CI until both exist.
"""

from __future__ import annotations

#: Exact span/metric names recorded by the instrumented code.
REGISTERED_NAMES: frozenset[str] = frozenset(
    {
        # -- estimator lifecycle (repro.core.base) --------------------
        "estimator.build",
        "estimator.query",
        "estimator.query_batch",
        "estimator.query_batch.size",
        "estimator.bandwidth.clamp",
        # -- planner (repro.db.planner) -------------------------------
        "planner.plan",
        "planner.estimate",
        "planner.estimate.rows",
        # -- experiment harness (repro.experiments.harness) -----------
        "harness.experiment",
        "harness.cell",
        "harness.cell.error",
        "harness.load_context",
        "harness.context.load",
        # -- serving tier (repro.serving) ------------------------------
        "serving.request",
        "serving.request.seconds",
        "serving.wait.seconds",
        "serving.rejected",
        "serving.retry",
        "serving.shed",
        "serving.poisoned",
        "serving.degraded",
        "serving.unavailable",
        "serving.deadline.exceeded",
        "serving.queue.depth",
        "serving.inflight",
        "serving.fault",
        "serving.snapshot.publish",
        "serving.snapshot.version",
        # -- online aggregation (repro.online.aggregator) -------------
        "online.batch",
        "online.records",
        "online.batch.records",
        "online.scan.fraction",
        "online.resmooth",
        "online.bandwidth",
        # -- online-learning corrections (repro.online.learning) ------
        "online.feedback",
        "online.rebind",
        # -- mergeable column summaries (repro.core.summary) ----------
        "summary.update",
        "summary.delete",
        "summary.delete.unaccounted",
        "summary.merge",
        "summary.freeze",
        # -- delta-aware ANALYZE / refresh policy (repro.db.catalog) --
        "catalog.refresh.full",
        "catalog.refresh.incremental",
        "catalog.refresh.fresh",
        "catalog.refresh.drift",
        # -- accuracy tracking (repro.telemetry.quality) ---------------
        "quality.observations",
        # -- drift / staleness monitors (repro.telemetry.drift) --------
        "drift.values",
        # -- SLO evaluation (repro.telemetry.slo) ----------------------
        "slo.violations",
    }
)

#: Name families whose last segment(s) are dynamic (class names, cell
#: tags, cache names, span names).  A recorded name must equal the
#: prefix or extend it with further dotted segments.
REGISTERED_PREFIXES: frozenset[str] = frozenset(
    {
        # per-estimator-class series (repro.core.base)
        "estimator.build.seconds",
        "estimator.query.seconds",
        "estimator.query.latency",
        "estimator.bandwidth",
        "estimator.bins",
        # per-cell harness timings
        "harness.cell.seconds",
        # cache verbs + per-cache-name tallies (repro.db.cache,
        # Catalog.invalidate)
        "cache.hit",
        "cache.miss",
        "cache.invalidate",
        # per-table statistics-version gauges (repro.db.catalog)
        "catalog.statistics_version",
        # per-boundary-policy slow-path tallies (repro.core.hybrid)
        "hybrid.fallback",
        # per-correction-model gauges (repro.online.learning)
        "online.learning",
        # q-error / absolute-error series, optionally keyed by
        # estimator class or table (repro.telemetry.quality)
        "quality.qerror",
        "quality.abs_error",
        # per-(table, column) KS gauges + per-table staleness gauges
        # (repro.telemetry.drift)
        "drift.ks",
        "drift.staleness.age",
        "drift.staleness.lag",
        # per-estimator-class distribution-shift gauges (repro.feedback)
        "drift.feedback.shift",
        # per-spec SLO burn gauges (repro.telemetry.slo)
        "slo.burn",
        # serving tier (repro.serving): per-table degradation tallies,
        # per-(table, tier) breaker gauges/counters, per-kind injected
        # faults, per-family served-tier tallies
        "serving.degraded",
        "serving.breaker.state",
        "serving.breaker.open",
        "serving.fault",
        "serving.tier",
        # every span auto-mirrors into a ``span.<name>`` series
        # (repro.telemetry.runtime)
        "span",
    }
)


def registered_names() -> frozenset[str]:
    """All exact registered names."""
    return REGISTERED_NAMES


def registered_prefixes() -> frozenset[str]:
    """All registered dynamic-suffix prefixes."""
    return REGISTERED_PREFIXES


def is_registered(name: str) -> bool:
    """Whether a *complete* dotted name is covered by the registry."""
    if name in REGISTERED_NAMES:
        return True
    return any(
        name == prefix or name.startswith(prefix + ".")
        for prefix in REGISTERED_PREFIXES
    )


def is_registered_prefix(static_prefix: str) -> bool:
    """Whether a *partial* name (the static head of an f-string) is plausible.

    Used by the analyzer for names like ``f"harness.cell.seconds.{tag}"``:
    the static head ``"harness.cell.seconds."`` must itself extend a
    registered name or prefix.  An empty static head is unverifiable and
    is accepted (the analyzer reports those separately in verbose mode).
    """
    if not static_prefix:
        return True
    head = static_prefix.rstrip(".")
    if is_registered(head):
        return True
    # The static head may stop mid-segment ("estimator.ba" + dynamic):
    # accept when some registered name/prefix starts with it.
    candidates = REGISTERED_NAMES | REGISTERED_PREFIXES
    return any(entry.startswith(static_prefix) for entry in candidates)
