"""Bounded-memory streaming quantile sketches.

:class:`repro.telemetry.metrics.MetricsRegistry` keeps every raw
observation of a value series only up to a configurable cap; a serving
process observing millions of latencies per hour would otherwise grow
without bound.  Above the cap, percentile summaries come from the
:class:`QuantileSketch` defined here — a log-binned sketch in the
DDSketch family (Masson, Rim & Lee, VLDB 2019): each positive value
``v`` lands in bin ``ceil(log_gamma(v))`` where ``gamma`` is chosen so
the bin midpoint is within a fixed *relative* error of every value in
the bin.

Guarantees
----------
* **Accuracy**: any quantile estimate is within ``relative_accuracy``
  (default 1 %) of some value between the true quantile's neighbours;
  ``min``/``max``/``count``/``sum`` are exact.
* **Memory**: the number of bins is bounded by the dynamic range of
  the data (``log_gamma(max/min)``) and hard-capped at ``max_bins``
  (lowest bins collapse first, biasing only the extreme low tail), so
  a series holds O(1) memory no matter how many values stream through.
* **Mergeability**: ``merge`` folds another sketch in bin-by-bin with
  no accuracy loss beyond the shared bin width — per-worker sketches
  from the parallel harness combine into one process summary.

Thread safety: all mutating and reading entry points take an internal
lock, so one sketch may be fed from several harness workers directly.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable

#: Default relative accuracy of quantile estimates.
DEFAULT_RELATIVE_ACCURACY = 0.01

#: Default hard cap on the number of log bins (positive + negative).
DEFAULT_MAX_BINS = 4096

#: Magnitudes at or below this are counted in the exact zero bucket.
_TINY = 1e-12


class QuantileSketch:
    """A mergeable, thread-safe, log-binned streaming quantile sketch.

    Parameters
    ----------
    relative_accuracy:
        Bound on the relative error of quantile estimates, in (0, 1).
    max_bins:
        Hard cap on stored bins; when exceeded, the lowest-magnitude
        positive bins collapse together (the extreme low tail loses
        resolution first).
    """

    def __init__(
        self,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        max_bins: int = DEFAULT_MAX_BINS,
    ) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        if max_bins < 8:
            raise ValueError(f"max_bins must be >= 8, got {max_bins}")
        self._alpha = float(relative_accuracy)
        self._gamma = (1.0 + self._alpha) / (1.0 - self._alpha)
        self._log_gamma = math.log(self._gamma)
        self._max_bins = int(max_bins)
        # bin index -> count, for positive and (mirrored) negative values.
        self._positive: dict[int, int] = {}
        self._negative: dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    # -- properties ----------------------------------------------------

    @property
    def relative_accuracy(self) -> float:
        """Configured relative-error bound."""
        return self._alpha

    @property
    def count(self) -> int:
        """Number of values added (exact)."""
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        """Sum of all added values (exact)."""
        with self._lock:
            return self._total

    @property
    def min(self) -> float:
        """Smallest value added (exact; ``inf`` when empty)."""
        with self._lock:
            return self._min

    @property
    def max(self) -> float:
        """Largest value added (exact; ``-inf`` when empty)."""
        with self._lock:
            return self._max

    @property
    def n_bins(self) -> int:
        """Stored bins right now (the memory footprint, in entries)."""
        with self._lock:
            return len(self._positive) + len(self._negative)

    # -- recording -----------------------------------------------------

    def _index(self, magnitude: float) -> int:
        return int(math.ceil(math.log(magnitude) / self._log_gamma))

    def _value(self, index: int) -> float:
        # Midpoint (harmonic) of the bin (gamma^(i-1), gamma^i]: within
        # `relative_accuracy` of every value in the bin.
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def add(self, value: float, count: int = 1) -> None:
        """Add ``value`` (``count`` times) to the sketch."""
        if count < 1:
            return
        value = float(value)
        with self._lock:
            self._add_locked(value, count)

    def _add_locked(self, value: float, count: int) -> None:
        self._count += count
        self._total += value * count
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if abs(value) <= _TINY:
            self._zero += count
        elif value > 0:
            index = self._index(value)
            self._positive[index] = self._positive.get(index, 0) + count
        else:
            index = self._index(-value)
            self._negative[index] = self._negative.get(index, 0) + count
        if len(self._positive) + len(self._negative) > self._max_bins:
            self._collapse_locked()

    def extend(self, values: Iterable[float]) -> None:
        """Add every value of an iterable under one lock acquisition."""
        with self._lock:
            for value in values:
                self._add_locked(float(value), 1)

    def _collapse_locked(self) -> None:
        """Fold the lowest-magnitude positive bins together.

        Keeps the total bin budget: resolution is lost only on the low
        tail of the smaller-magnitude side, the least interesting end
        for latency-style series.
        """
        side = self._positive if len(self._positive) >= len(self._negative) else self._negative
        if len(side) < 2:
            return
        ordered = sorted(side)
        victim, survivor = ordered[0], ordered[1]
        side[survivor] = side.get(survivor, 0) + side.pop(victim)

    # -- merging -------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (``other`` is unchanged).

        Requires matching ``relative_accuracy`` (identical bin edges);
        merging is lossless with respect to the shared bin resolution.
        """
        if not math.isclose(other._gamma, self._gamma):
            raise ValueError(
                "cannot merge sketches with different relative accuracies: "
                f"{self._alpha} vs {other._alpha}"
            )
        if other is self:
            return
        state = other._export_state()
        with self._lock:
            positive, negative, zero, count, total, low, high = state
            for index, n in positive.items():
                self._positive[index] = self._positive.get(index, 0) + n
            for index, n in negative.items():
                self._negative[index] = self._negative.get(index, 0) + n
            self._zero += zero
            self._count += count
            self._total += total
            self._min = min(self._min, low)
            self._max = max(self._max, high)
            while len(self._positive) + len(self._negative) > self._max_bins:
                self._collapse_locked()

    def _export_state(
        self,
    ) -> tuple[dict[int, int], dict[int, int], int, int, float, float, float]:
        with self._lock:
            return (
                dict(self._positive),
                dict(self._negative),
                self._zero,
                self._count,
                self._total,
                self._min,
                self._max,
            )

    def copy(self) -> "QuantileSketch":
        """An independent deep copy (safe under concurrent adds)."""
        clone = QuantileSketch(self._alpha, self._max_bins)
        (
            clone._positive,
            clone._negative,
            clone._zero,
            clone._count,
            clone._total,
            clone._min,
            clone._max,
        ) = self._export_state()
        return clone

    # -- reading -------------------------------------------------------

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimate, ``q`` in [0, 1].

        Within ``relative_accuracy`` of an actual data value at the
        requested rank; exact at the extremes (``q`` 0 and 1 return the
        tracked min/max).  ``nan`` when the sketch is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return math.nan
            if q <= 0.0:
                return self._min
            if q >= 1.0:
                return self._max
            rank = q * (self._count - 1)
            cumulative = 0
            # Ascending value order: most-negative first (descending
            # magnitude index), then zeros, then positives ascending.
            for index in sorted(self._negative, reverse=True):
                cumulative += self._negative[index]
                if cumulative > rank:
                    return self._clamp(-self._value(index))
            cumulative += self._zero
            if cumulative > rank:
                return self._clamp(0.0)
            for index in sorted(self._positive):
                cumulative += self._positive[index]
                if cumulative > rank:
                    return self._clamp(self._value(index))
            return self._max

    def _clamp(self, value: float) -> float:
        return min(max(value, self._min), self._max)

    def percentile(self, p: float) -> float:
        """:meth:`quantile` with ``p`` in [0, 100] (registry convention)."""
        return self.quantile(p / 100.0)
