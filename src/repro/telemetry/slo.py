"""Declarative service-level objectives over the telemetry surface.

An :class:`SLOSpec` names one objective — a latency-percentile
ceiling, a q-error budget, a cache hit-rate floor — and says where the
observed number comes from:

* ``kind="quantile"`` — a percentile/aggregate of a value series in a
  registry snapshot (``metric`` is the series name, ``objective`` one
  of ``p50``/``p90``/``p99``/``mean``/``max``).
* ``kind="hit_rate"`` — ``cache.hit.<metric>`` vs
  ``cache.miss.<metric>`` counters, evaluated as hits/(hits+misses).
* ``kind="bench"`` — an entry of the committed ``BENCH_perf.json``
  perf trajectory (``metric`` is the entry name, ``objective``
  ``median``/``mean``), so CI can hold latency SLOs against the
  recorded benchmark numbers.

Evaluation produces :class:`SLOResult` rows with a pass/fail verdict
and a **burn** ratio — the fraction of the budget consumed (1.0 is
exactly at the objective; above 1.0 the objective is violated).  Specs
whose data source has fewer than ``min_count`` observations are
*skipped*, not failed: an SLO on a cold registry is unknowable, and a
serving gate must distinguish "violated" from "no traffic yet".
"""

from __future__ import annotations

import dataclasses
import json
import math
import pathlib
from typing import Mapping, Sequence

from repro.telemetry.runtime import get_telemetry

_QUANTILE_OBJECTIVES = frozenset({"p50", "p90", "p99", "mean", "max", "min"})
_BENCH_OBJECTIVES = frozenset({"median", "mean"})
_KINDS = frozenset({"quantile", "hit_rate", "bench"})


@dataclasses.dataclass(frozen=True)
class SLOSpec:
    """One declarative objective.

    Attributes
    ----------
    name:
        Human-readable identifier (``batch-10k-p99``).
    kind:
        ``"quantile"``, ``"hit_rate"`` or ``"bench"`` (see module doc).
    metric:
        Series name, cache name, or bench entry the objective reads.
    objective:
        Aggregate to compare (``p99`` ...); ignored for ``hit_rate``.
    threshold:
        The budget: a ceiling when ``direction`` is ``"le"``, a floor
        when ``"ge"``.
    direction:
        ``"le"`` (observed must stay at or below the threshold) or
        ``"ge"`` (at or above).
    min_count:
        Minimum underlying observations before the spec is evaluated;
        below it the result is *skipped* rather than pass/fail.
    description:
        Free-text rationale shown in reports.
    """

    name: str
    kind: str
    metric: str
    objective: str
    threshold: float
    direction: str = "le"
    min_count: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}; choose from {sorted(_KINDS)}")
        if self.direction not in ("le", "ge"):
            raise ValueError(f"direction must be 'le' or 'ge', got {self.direction!r}")
        if self.kind == "quantile" and self.objective not in _QUANTILE_OBJECTIVES:
            raise ValueError(
                f"quantile objective must be one of {sorted(_QUANTILE_OBJECTIVES)}, "
                f"got {self.objective!r}"
            )
        if self.kind == "bench" and self.objective not in _BENCH_OBJECTIVES:
            raise ValueError(
                f"bench objective must be one of {sorted(_BENCH_OBJECTIVES)}, "
                f"got {self.objective!r}"
            )
        if self.threshold <= 0 or not math.isfinite(self.threshold):
            raise ValueError(f"threshold must be positive and finite, got {self.threshold}")


@dataclasses.dataclass(frozen=True)
class SLOResult:
    """Outcome of evaluating one spec against one data source.

    ``passed`` is ``None`` when the spec was skipped for lack of data;
    ``burn`` is the budget-consumption ratio (``observed/threshold``
    for ceilings, ``threshold/observed`` for floors — above 1.0 means
    the objective is violated either way).
    """

    spec: SLOSpec
    observed: float | None
    count: int
    passed: bool | None
    burn: float | None

    @property
    def status(self) -> str:
        """``"pass"`` / ``"fail"`` / ``"skipped"``."""
        if self.passed is None:
            return "skipped"
        return "pass" if self.passed else "fail"

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly rendering."""
        return {
            "name": self.spec.name,
            "kind": self.spec.kind,
            "metric": self.spec.metric,
            "objective": self.spec.objective,
            "threshold": self.spec.threshold,
            "direction": self.spec.direction,
            "observed": self.observed,
            "count": self.count,
            "status": self.status,
            "burn": self.burn,
        }


def _verdict(spec: SLOSpec, observed: float, count: int) -> SLOResult:
    if spec.direction == "le":
        passed = observed <= spec.threshold
        burn = observed / spec.threshold
    else:
        passed = observed >= spec.threshold
        burn = spec.threshold / observed if observed > 0 else math.inf
    return SLOResult(spec=spec, observed=observed, count=count, passed=passed, burn=burn)


def _skip(spec: SLOSpec, count: int = 0) -> SLOResult:
    return SLOResult(spec=spec, observed=None, count=count, passed=None, burn=None)


def evaluate_snapshot(
    specs: Sequence[SLOSpec], snapshot: Mapping[str, object]
) -> list[SLOResult]:
    """Evaluate quantile/hit-rate specs against a metrics snapshot.

    ``snapshot`` is the dict produced by
    :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot` (or the
    ``telemetry.metrics`` section of a run manifest).  Bench specs are
    skipped here — feed those to :func:`evaluate_bench`.
    """
    counters = snapshot.get("counters", {})
    values = snapshot.get("values", {})
    if not isinstance(counters, Mapping) or not isinstance(values, Mapping):
        raise ValueError("snapshot must carry 'counters' and 'values' mappings")
    results = []
    for spec in specs:
        if spec.kind == "quantile":
            summary = values.get(spec.metric)
            if not isinstance(summary, Mapping):
                results.append(_skip(spec))
                continue
            count = int(summary.get("count", 0) or 0)
            observed = summary.get(spec.objective)
            if count < spec.min_count or not isinstance(observed, (int, float)):
                results.append(_skip(spec, count))
                continue
            results.append(_verdict(spec, float(observed), count))
        elif spec.kind == "hit_rate":
            hits = float(counters.get(f"cache.hit.{spec.metric}", 0.0) or 0.0)
            misses = float(counters.get(f"cache.miss.{spec.metric}", 0.0) or 0.0)
            lookups = int(hits + misses)
            if lookups < spec.min_count or lookups == 0:
                results.append(_skip(spec, lookups))
                continue
            results.append(_verdict(spec, hits / (hits + misses), lookups))
        else:  # bench specs have no data in a registry snapshot
            results.append(_skip(spec))
    return results


def evaluate_registry(
    specs: Sequence[SLOSpec],
    registry: "object | None" = None,
    *,
    record: bool = False,
) -> list[SLOResult]:
    """Evaluate specs against a live registry (default: the global one).

    With ``record=True`` each evaluated spec's burn is written back as
    the ``slo.burn.<name>`` gauge and failures count
    ``slo.violations`` — so a serving loop's own SLO posture is
    scrapeable like any other metric.
    """
    from repro.telemetry.metrics import MetricsRegistry

    if registry is None:
        registry = get_telemetry().metrics
    if not isinstance(registry, MetricsRegistry):
        raise TypeError(f"expected a MetricsRegistry, got {type(registry).__name__}")
    results = evaluate_snapshot(specs, registry.snapshot())
    if record:
        for result in results:
            if result.burn is not None:
                registry.set_gauge(f"slo.burn.{result.spec.name}", result.burn)
            if result.passed is False:
                registry.inc("slo.violations")
    return results


def evaluate_bench(
    specs: Sequence[SLOSpec], bench: Mapping[str, Mapping[str, object]]
) -> list[SLOResult]:
    """Evaluate bench specs against a ``BENCH_perf.json`` benchmarks map."""
    results = []
    for spec in specs:
        if spec.kind != "bench":
            continue
        entry = bench.get(spec.metric)
        if not isinstance(entry, Mapping):
            results.append(_skip(spec))
            continue
        observed = entry.get(f"{spec.objective}_s")
        if not isinstance(observed, (int, float)):
            # Single-round timings only carry mean_s.
            observed = entry.get("mean_s")
        rounds = int(entry.get("rounds", 1) or 1)
        if not isinstance(observed, (int, float)) or rounds < spec.min_count:
            results.append(_skip(spec, rounds))
            continue
        results.append(_verdict(spec, float(observed), rounds))
    return results


def load_bench(path: pathlib.Path) -> dict[str, dict[str, object]]:
    """The ``benchmarks`` map of a ``BENCH_perf.json`` export file."""
    payload = json.loads(pathlib.Path(path).read_text())
    if not isinstance(payload, dict) or not isinstance(payload.get("benchmarks"), dict):
        raise ValueError(f"{path}: not a benchmark export file")
    return payload["benchmarks"]


def render_report(results: Sequence[SLOResult]) -> str:
    """One-line-per-spec text report."""
    if not results:
        return "(no SLOs evaluated)\n"
    lines = []
    width = max(len(result.spec.name) for result in results)
    for result in results:
        spec = result.spec
        bound = "<=" if spec.direction == "le" else ">="
        if result.observed is None:
            detail = f"skipped (insufficient data, n={result.count})"
        else:
            detail = (
                f"observed={result.observed:.6g} {bound} {spec.threshold:.6g}  "
                f"burn={result.burn:.2f}  n={result.count}"
            )
        lines.append(f"{result.status.upper():<8} {spec.name:<{width}}  {detail}")
    failed = sum(1 for result in results if result.passed is False)
    evaluated = sum(1 for result in results if result.passed is not None)
    lines.append(
        f"-- {evaluated} evaluated, {failed} failed, "
        f"{len(results) - evaluated} skipped"
    )
    return "\n".join(lines) + "\n"


#: Default objectives ``python -m repro slo`` evaluates: latency
#: ceilings per batch size against the committed perf trajectory
#: (generous multiples of the recorded medians, so only a genuine
#: regression trips them), a q-error budget and a cache hit-rate floor
#: against the latest run manifests.
DEFAULT_SLOS: tuple[SLOSpec, ...] = (
    SLOSpec(
        name="batch-10-latency",
        kind="bench",
        metric="perf_batch.kernel_10",
        objective="median",
        threshold=2e-3,
        description="10-query kernel batch median stays under 2 ms",
    ),
    SLOSpec(
        name="batch-100-latency",
        kind="bench",
        metric="perf_batch.kernel_100",
        objective="median",
        threshold=5e-3,
        description="100-query kernel batch median stays under 5 ms",
    ),
    SLOSpec(
        name="batch-1k-latency",
        kind="bench",
        metric="perf_batch.kernel_1000",
        objective="median",
        threshold=5e-2,
        description="1k-query kernel batch median stays under 50 ms",
    ),
    SLOSpec(
        name="batch-10k-latency",
        kind="bench",
        metric="perf_batch.kernel_10000",
        objective="median",
        threshold=5e-1,
        description="10k-query kernel batch median stays under 500 ms",
    ),
    SLOSpec(
        name="qerror-p90-budget",
        kind="quantile",
        metric="quality.qerror",
        objective="p90",
        threshold=100.0,
        min_count=20,
        description="90th-percentile q-error across recorded truth pairs",
    ),
    SLOSpec(
        name="context-cache-hit-rate",
        kind="hit_rate",
        metric="context",
        objective="ratio",
        threshold=0.3,
        direction="ge",
        min_count=20,
        description="harness context cache serves >=30% of lookups under load",
    ),
)


#: Objectives the serving tier watches for burn-driven shedding (see
#: repro.serving.service): when the burn of any of these reaches the
#: service's ``shed_burn_threshold``, the primary tier is preemptively
#: shed and requests serve from the cheaper histogram/uniform tiers
#: until the burn recovers.  Thresholds are request-latency budgets,
#: not bench ceilings — they read the service's own live registry.
SERVING_SLOS: tuple[SLOSpec, ...] = (
    SLOSpec(
        name="serving-p99-latency",
        kind="quantile",
        metric="serving.request.seconds",
        objective="p99",
        threshold=0.05,
        min_count=20,
        description="99th-percentile served-request latency stays under 50 ms",
    ),
    SLOSpec(
        name="serving-p90-queue-wait",
        kind="quantile",
        metric="serving.wait.seconds",
        objective="p90",
        threshold=0.02,
        min_count=20,
        description="90th-percentile admission-queue wait stays under 20 ms",
    ),
)


def max_burn(results: Sequence[SLOResult]) -> float:
    """The largest burn ratio across evaluated results (0.0 if none).

    The scalar a shedding decision needs: "how close is the worst
    objective to exhaustion".
    """
    burns = [result.burn for result in results if result.burn is not None]
    return max(burns) if burns else 0.0
