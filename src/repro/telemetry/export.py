"""Telemetry exporters: Prometheus text exposition and JSONL events.

Two serving-friendly output formats for everything a
:class:`~repro.telemetry.metrics.MetricsRegistry` records:

* :func:`prometheus_exposition` renders a registry snapshot in the
  Prometheus/OpenMetrics text format — counters as ``*_total``, gauges
  verbatim, value series as summaries (``{quantile="0.5"}`` samples
  plus ``_sum``/``_count``) — ready for a scrape endpoint or a textfile
  collector.  :func:`parse_exposition` reads the format back (used by
  the round-trip tests and by anything that wants to diff expositions).
* :func:`bench_exposition` renders the ``benchmarks`` map of a
  ``BENCH_perf.json`` export as gauges whose metric names carry the
  *correct* unit suffix per entry kind (``_seconds`` for timings,
  ``_ratio`` for ratios, ``_per_second`` for rates) — dimensioned
  entries are no longer published as if they were latencies.
* :class:`JsonlEventLog` appends structured events as one JSON object
  per line, the tail-able audit stream for quality observations, SLO
  verdicts and drift readings.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import pathlib
import re
import threading
import time
from typing import Iterator, Mapping

#: Environment variable naming the default JSONL event-log path.
EVENT_LOG_ENV = "REPRO_EVENT_LOG"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

#: Quantiles emitted per value series (matches the registry summary).
_SUMMARY_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def _metric_name(prefix: str, name: str) -> str:
    """``repro`` + ``cache.hit.context`` -> ``repro_cache_hit_context``."""
    full = f"{prefix}_{name}" if prefix else name
    full = _SANITIZE.sub("_", full)
    if not _NAME_OK.match(full):
        full = f"_{full}"
    return full


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Mapping[str, str] | None, extra: Mapping[str, str] | None = None) -> str:
    merged: dict[str, str] = {}
    if labels:
        merged.update(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{_SANITIZE.sub("_", key)}="{_escape_label_value(str(value))}"'
        for key, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def prometheus_exposition(
    snapshot: Mapping[str, object],
    prefix: str = "repro",
    labels: Mapping[str, str] | None = None,
) -> str:
    """Render a registry snapshot in the Prometheus text format.

    ``snapshot`` is the dict from
    :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot` (or the
    ``telemetry.metrics`` section of a run manifest).  Metric names are
    prefixed and sanitized (dots become underscores); ``labels`` are
    attached to every sample (e.g. ``{"experiment": "fig04"}``).  The
    output ends with the OpenMetrics ``# EOF`` marker.
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    values = snapshot.get("values", {})
    if not isinstance(counters, Mapping) or not isinstance(values, Mapping):
        raise ValueError("snapshot must carry 'counters' and 'values' mappings")
    if not isinstance(gauges, Mapping):
        gauges = {}
    base_labels = _render_labels(labels)
    lines: list[str] = []
    for name in sorted(counters):
        metric = _metric_name(prefix, f"{name}_total")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{base_labels} {_format_value(float(counters[name]))}")
    for name in sorted(gauges):
        metric = _metric_name(prefix, name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{base_labels} {_format_value(float(gauges[name]))}")
    for name in sorted(values):
        summary = values[name]
        if not isinstance(summary, Mapping):
            continue
        metric = _metric_name(prefix, name)
        lines.append(f"# TYPE {metric} summary")
        for quantile, field in _SUMMARY_QUANTILES:
            observed = summary.get(field)
            if isinstance(observed, (int, float)):
                sample_labels = _render_labels(labels, {"quantile": quantile})
                lines.append(f"{metric}{sample_labels} {_format_value(float(observed))}")
        total = summary.get("total", 0.0)
        count = summary.get("count", 0)
        lines.append(f"{metric}_sum{base_labels} {_format_value(float(total))}")
        lines.append(f"{metric}_count{base_labels} {_format_value(float(count))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


#: Metric-name suffix per bench entry kind (Prometheus convention puts
#: the unit in the name).
_BENCH_SUFFIX = {"timing": "seconds", "ratio": "ratio", "rate": "per_second"}


def bench_exposition(
    benchmarks: Mapping[str, Mapping[str, object]],
    prefix: str = "repro_bench",
    labels: Mapping[str, str] | None = None,
) -> str:
    """Render a ``BENCH_perf.json`` benchmarks map as Prometheus gauges.

    Each entry becomes one gauge named with the unit suffix its kind
    dictates — ``perf_batch.kernel_100`` (a timing) becomes
    ``repro_bench_perf_batch_kernel_100_seconds``, while
    ``perf_batch.speedup_10000_x`` (a ratio) becomes
    ``..._speedup_10000_x_ratio`` instead of masquerading as seconds.
    Timing entries publish their median when available (falling back
    to the mean); dimensioned entries publish ``value`` (falling back
    to the legacy mislabeled ``mean_s`` so pre-migration exports still
    render, just with the honest unit in the name).
    """
    from repro.telemetry.bench import entry_kind

    # Accept the whole loaded BENCH_perf.json as well as its inner
    # benchmarks map — silently rendering an empty page for the
    # natural `json.load(...)` call would be a footgun.
    wrapped = benchmarks.get("benchmarks")
    if isinstance(wrapped, Mapping) and "schema" in benchmarks:
        benchmarks = wrapped

    base_labels = _render_labels(labels)
    lines: list[str] = []
    for name in sorted(benchmarks):
        entry = benchmarks[name]
        if not isinstance(entry, Mapping):
            continue
        kind = entry_kind(name, entry)
        if kind == "timing":
            observed = entry.get("median_s", entry.get("mean_s"))
        else:
            observed = entry.get("value", entry.get("mean_s"))
        if not isinstance(observed, (int, float)):
            continue
        metric = _metric_name(prefix, f"{name}_{_BENCH_SUFFIX[kind]}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{base_labels} {_format_value(float(observed))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


@dataclasses.dataclass(frozen=True)
class Sample:
    """One parsed exposition sample."""

    name: str
    labels: dict[str, str]
    value: float


_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_value(token: str) -> float:
    if token == "NaN":
        return math.nan
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    return float(token)


def parse_exposition(text: str) -> dict[str, list[Sample]]:
    """Parse Prometheus text exposition back into samples by metric name.

    Understands exactly the subset :func:`prometheus_exposition` emits
    (comments, bare samples, labelled samples, ``# EOF``); raises
    ``ValueError`` on anything else so the round-trip test is strict.
    """
    out: dict[str, list[Sample]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        labels: dict[str, str] = {}
        if match.group("labels"):
            for key, value in _LABEL_PAIR.findall(match.group("labels")):
                labels[key] = (
                    value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
                )
        name = match.group("name")
        out.setdefault(name, []).append(
            Sample(name=name, labels=labels, value=_parse_value(match.group("value")))
        )
    return out


class JsonlEventLog:
    """An append-only JSON-lines event stream.

    Each :meth:`emit` call appends one object ``{"ts": ..., "kind":
    ..., **fields}``; writes are line-atomic under an internal lock so
    concurrent emitters (harness workers, the feedback path) interleave
    cleanly.  The file handle is opened lazily and kept open; call
    :meth:`close` (or use the instance as a context manager) when done.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self._path = pathlib.Path(path)
        self._lock = threading.Lock()
        self._handle = None  # type: ignore[var-annotated]

    @property
    def path(self) -> pathlib.Path:
        """Where events are appended."""
        return self._path

    def emit(self, kind: str, **fields: object) -> None:
        """Append one event of ``kind`` with the given fields."""
        record = {"ts": time.time(), "kind": kind, **fields}
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._handle is None:
                self._path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self._path.open("a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        """Close the underlying file handle (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JsonlEventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def iter_events(path: str | pathlib.Path) -> Iterator[dict[str, object]]:
    """Yield events from a JSONL log, skipping torn/blank lines."""
    log_path = pathlib.Path(path)
    if not log_path.exists():
        return
    with log_path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict):
                yield event


def default_event_log() -> "JsonlEventLog | None":
    """Event log named by ``$REPRO_EVENT_LOG``, or ``None`` if unset."""
    path = os.environ.get(EVENT_LOG_ENV)
    if not path:
        return None
    return JsonlEventLog(path)
