"""The process-global, swappable :class:`Telemetry` object.

One ``Telemetry`` instance owns a :class:`~repro.telemetry.metrics.MetricsRegistry`
and a stack of open :class:`~repro.telemetry.spans.SpanRecord` spans.
The module-level instance returned by :func:`get_telemetry` is
**disabled by default**: ``span()`` hands back a shared null context
manager and instrumented call sites guard every recording with
``telemetry.enabled``, so the cost of shipping instrumentation is one
attribute check per call.

Swap the global with :func:`set_telemetry`, or use the
:func:`session` context manager which installs an enabled instance and
restores the previous one on exit.
"""

from __future__ import annotations

import json
import threading
import time
import tracemalloc
from contextlib import contextmanager
from typing import Iterator

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanRecord


class _NullSpan:
    """Reusable no-op context manager for disabled telemetry."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager driving one span's lifecycle on a telemetry stack."""

    __slots__ = ("_telemetry", "_record")

    def __init__(self, telemetry: "Telemetry", record: SpanRecord) -> None:
        self._telemetry = telemetry
        self._record = record

    def __enter__(self) -> SpanRecord:
        self._telemetry._open(self._record)
        return self._record

    def __exit__(self, *exc_info: object) -> bool:
        self._telemetry._close(self._record)
        return False


class Telemetry:
    """Metrics + tracing facade for one measurement session.

    Parameters
    ----------
    enabled:
        When ``False`` (the default for the process-global instance)
        every recording entry point is a no-op.
    trace_memory:
        Capture ``tracemalloc`` peak memory per span.  Starts
        ``tracemalloc`` on first use; noticeably slows allocation-heavy
        code, so it is opt-in on top of tracing.
    """

    def __init__(self, enabled: bool = True, trace_memory: bool = False) -> None:
        self.enabled = bool(enabled)
        self.trace_memory = bool(trace_memory)
        self.metrics = MetricsRegistry()
        # Span nesting is tracked per thread (harness workers trace
        # their own cells concurrently); the completed-root forest is
        # shared and guarded by a lock.
        self._local = threading.local()
        self._roots: list[SpanRecord] = []
        self._roots_lock = threading.Lock()
        self._started_memory = False

    @property
    def _stack(self) -> list[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- spans --------------------------------------------------------

    def span(self, name: str, **tags: str) -> "_NullSpan | _SpanContext":
        """Open a traced region; records wall-clock and nesting.

        Returns a context manager; when telemetry is disabled it is a
        shared no-op object and nothing is recorded.
        """
        if not self.enabled:
            return _NULL_SPAN
        record = SpanRecord(name=name, tags={k: str(v) for k, v in tags.items()})
        return _SpanContext(self, record)

    def _open(self, record: SpanRecord) -> None:
        if self.trace_memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_memory = True
            else:
                # `reset_peak` floors the process-wide watermark at the
                # current usage — it cannot be restored upward — so the
                # peak observed up to this instant must be banked into
                # every open ancestor before this span claims a fresh
                # window, or a deep child would erase its parent's peak.
                self._fold_peak_into_open_spans()
            tracemalloc.reset_peak()
        record.start = time.perf_counter()
        self._stack.append(record)

    def _fold_peak_into_open_spans(self) -> None:
        peak = tracemalloc.get_traced_memory()[1]
        for open_record in self._stack:
            if open_record.memory_peak is None or peak > open_record.memory_peak:
                open_record.memory_peak = peak

    def _close(self, record: SpanRecord) -> None:
        record.duration = time.perf_counter() - record.start
        if self.trace_memory and tracemalloc.is_tracing():
            # Max with any peak banked while children reset the
            # watermark; the watermark itself is NOT reset here, so the
            # parent's closing read still covers this span's interval
            # and parent peaks dominate child peaks.
            peak = tracemalloc.get_traced_memory()[1]
            if record.memory_peak is None or peak > record.memory_peak:
                record.memory_peak = peak
        # Close any nested spans left open by an exception unwinding
        # through them, then detach this record from the stack.
        while self._stack and self._stack[-1] is not record:
            dangling = self._stack.pop()
            if dangling.duration is None:
                dangling.duration = time.perf_counter() - dangling.start
        if self._stack and self._stack[-1] is record:
            self._stack.pop()
        if self._stack:
            self._stack[-1].children.append(record)
        else:
            with self._roots_lock:
                self._roots.append(record)
        self.metrics.observe(f"span.{record.name}", record.duration)

    @property
    def current_span(self) -> SpanRecord | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def in_span(self, name: str) -> bool:
        """Whether a span named ``name`` is currently open."""
        return any(record.name == name for record in self._stack)

    @property
    def roots(self) -> tuple[SpanRecord, ...]:
        """Completed top-level spans, in completion order."""
        with self._roots_lock:
            return tuple(self._roots)

    def spans_by_name(self, name: str) -> tuple[SpanRecord, ...]:
        """All completed spans named ``name``, anywhere in the forest."""
        return tuple(
            record
            for root in self.roots
            for record in root.iter_all()
            if record.name == name
        )

    def render_spans(self) -> str:
        """Text rendering of the completed span forest."""
        roots = self.roots
        if not roots:
            return "(no spans recorded)"
        return "\n".join(root.render() for root in roots)

    # -- export -------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Everything recorded so far as plain nested dicts."""
        by_name: dict[str, dict[str, float]] = {}
        roots = self.roots
        for root in roots:
            for record in root.iter_all():
                if record.duration is None:
                    continue
                agg = by_name.setdefault(
                    record.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
                )
                agg["count"] += 1
                agg["total_s"] += record.duration
                agg["max_s"] = max(agg["max_s"], record.duration)
        return {
            "enabled": self.enabled,
            "trace_memory": self.trace_memory,
            "metrics": self.metrics.snapshot(),
            "spans": {
                "by_name": {name: by_name[name] for name in sorted(by_name)},
                "tree": [root.as_dict() for root in roots],
            },
        }

    def to_json(self, **json_kwargs: object) -> str:
        """JSON rendering of :meth:`snapshot`."""
        json_kwargs.setdefault("indent", 2)
        json_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.snapshot(), **json_kwargs)

    def reset(self) -> None:
        """Drop all recorded spans and metrics (keeps the flags).

        Only the calling thread's open-span stack is cleared; worker
        threads own their stacks.
        """
        self.metrics.reset()
        self._stack.clear()
        with self._roots_lock:
            self._roots.clear()

    def close(self) -> None:
        """Stop ``tracemalloc`` if this instance started it."""
        if self._started_memory and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_memory = False


#: The process-global instance: disabled, so instrumented code is a
#: near-no-op until a caller opts in.
_GLOBAL = Telemetry(enabled=False)


def get_telemetry() -> Telemetry:
    """The current process-global telemetry object."""
    return _GLOBAL


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Install ``telemetry`` as the process-global object.

    Returns the previously installed instance so callers can restore
    it (prefer :func:`session` which does this automatically).
    """
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = telemetry
    return previous


@contextmanager
def session(trace_memory: bool = False) -> Iterator[Telemetry]:
    """Run the ``with`` body under a fresh, enabled telemetry object.

    The previous global instance is restored on exit; the session's
    instance is yielded so the caller can snapshot or render it after
    the block finishes.
    """
    telemetry = Telemetry(enabled=True, trace_memory=trace_memory)
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)
        telemetry.close()
