"""Benchmark-timing export: the machine-readable perf trajectory.

``benchmarks/test_perf_*.py`` measure what a database system pays for
each estimator (ANALYZE-time build, optimization-time query batches).
:class:`BenchmarkExporter` collects those timings during a pytest
session and merges them into a JSON file — ``BENCH_perf.json`` at the
repository root — so successive PRs accumulate a comparable perf
trajectory instead of throwing the numbers away with the terminal
scrollback.

The file maps ``<group>.<name>`` to summary stats::

    {
      "schema": "repro.telemetry.bench/v1",
      "updated_unix": 1754480000.0,
      "benchmarks": {
        "perf_build.kernel_ns":
            {"kind": "timing", "unit": "seconds", "mean_s": ..., ...},
        "perf_batch.speedup_10000_x":
            {"kind": "ratio", "unit": "x", "value": ...}
      }
    }

Every entry is typed: ``kind`` says what the number *is* (``timing``,
``ratio`` or ``rate``) and therefore which direction is better
(timings regress upward, ratios and rates regress downward), and
``unit`` names the unit for exporters.  Historically ratio/rate
observations (batch speedup, sustained QPS) were shoved under the
seconds-typed ``mean_s`` key, which mislabeled them in Prometheus
output and made the perf gate read "speedup grew" as a latency
regression; dimensioned values now live under ``value`` instead.
``benchmarks/perf_gate.py`` consumes the ``kind`` to pick the
comparison direction (inferring ``ratio`` from a legacy ``_x`` name
suffix when the field is absent).

Re-running a subset of the benchmarks only overwrites the entries it
measured; everything else is preserved.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Mapping

#: Schema identifier embedded in the export file.
BENCH_SCHEMA = "repro.telemetry.bench/v1"

#: Entry kinds the schema admits.  ``timing`` regresses when it grows;
#: ``ratio`` and ``rate`` regress when they shrink.
BENCH_KINDS = ("timing", "ratio", "rate")

#: Kinds where a *larger* number is the better one (by default —
#: an entry's explicit ``better`` field overrides, e.g. an overhead
#: ratio where growth is the regression).
HIGHER_IS_BETTER_KINDS = frozenset({"ratio", "rate"})


def entry_kind(name: str, entry: Mapping[str, object]) -> str:
    """The (possibly inferred) kind of one benchmarks-map entry.

    Prefers the explicit ``kind`` field; legacy entries written before
    the schema carried kinds are inferred from the naming convention —
    a ``_x`` suffix marked ratios/rates — and default to ``timing``.
    """
    kind = entry.get("kind")
    if isinstance(kind, str) and kind in BENCH_KINDS:
        return kind
    return "ratio" if name.endswith("_x") else "timing"


def entry_direction(name: str, entry: Mapping[str, object]) -> str:
    """Which way is better for one entry: ``"higher"`` or ``"lower"``.

    The explicit ``better`` field wins; otherwise the kind decides
    (timings prefer lower, ratios/rates prefer higher).
    """
    better = entry.get("better")
    if better in ("higher", "lower"):
        return str(better)
    return "higher" if entry_kind(name, entry) in HIGHER_IS_BETTER_KINDS else "lower"


def _stat(stats: object, attribute: str) -> float | None:
    """Pull one numeric attribute off a pytest-benchmark stats object."""
    value = getattr(stats, attribute, None)
    try:
        return None if value is None else float(value)
    except (TypeError, ValueError):
        return None


class BenchmarkExporter:
    """Accumulates benchmark timings and merges them into a JSON file."""

    def __init__(self) -> None:
        self._entries: dict[str, dict[str, object]] = {}

    def record(self, group: str, name: str, stats: object) -> None:
        """Record one benchmark's timing stats under ``group.name``.

        ``stats`` is a ``pytest-benchmark`` ``Stats`` object (or
        anything with ``mean``/``min``/``max``/``stddev``/``rounds``
        attributes); missing attributes are simply omitted.
        """
        entry: dict[str, object] = {}
        for attribute, key in (
            ("mean", "mean_s"),
            ("min", "min_s"),
            ("max", "max_s"),
            ("stddev", "stddev_s"),
            ("median", "median_s"),
        ):
            value = _stat(stats, attribute)
            if value is not None:
                entry[key] = value
        rounds = getattr(stats, "rounds", None)
        if rounds is not None:
            entry["rounds"] = int(rounds)
        entry["kind"] = "timing"
        entry["unit"] = "seconds"
        self._entries[f"{group}.{name}"] = entry

    def record_seconds(self, group: str, name: str, seconds: float) -> None:
        """Record a single hand-timed measurement."""
        self._entries[f"{group}.{name}"] = {
            "mean_s": float(seconds),
            "rounds": 1,
            "kind": "timing",
            "unit": "seconds",
        }

    def record_value(
        self,
        group: str,
        name: str,
        value: float,
        *,
        kind: str,
        unit: str,
        better: str | None = None,
    ) -> None:
        """Record a dimensioned (non-timing) observation.

        Ratios (e.g. a speedup factor) and rates (e.g. sustained QPS)
        are *not* timings: storing them under ``mean_s`` mislabels the
        unit in every exporter and inverts the better-direction in the
        perf gate.  They go under the ``value`` key with an explicit
        ``kind``/``unit`` instead.  ``better`` overrides the kind's
        default direction — e.g. an instrumentation-overhead ratio
        regresses by *growing*, so it records ``better="lower"``.
        """
        if kind not in BENCH_KINDS:
            raise ValueError(f"kind must be one of {BENCH_KINDS}, got {kind!r}")
        if better not in (None, "higher", "lower"):
            raise ValueError(f"better must be 'higher' or 'lower', got {better!r}")
        entry: dict[str, object] = {
            "value": float(value),
            "rounds": 1,
            "kind": kind,
            "unit": unit,
        }
        if better is not None:
            entry["better"] = better
        self._entries[f"{group}.{name}"] = entry

    @property
    def entries(self) -> Mapping[str, Mapping[str, object]]:
        """Everything recorded so far."""
        return dict(self._entries)

    def export(self, path: pathlib.Path) -> pathlib.Path | None:
        """Merge the recorded entries into the JSON file at ``path``.

        Returns the path, or ``None`` when nothing was recorded (the
        file is left untouched so partial pytest runs don't erase it).
        """
        if not self._entries:
            return None
        path = pathlib.Path(path)
        merged: dict[str, object] = {}
        if path.exists():
            try:
                existing = json.loads(path.read_text())
                if isinstance(existing, dict) and existing.get("schema") == BENCH_SCHEMA:
                    merged = dict(existing.get("benchmarks", {}))
            except (OSError, json.JSONDecodeError):
                merged = {}
        merged.update(self._entries)
        payload = {
            "schema": BENCH_SCHEMA,
            "updated_unix": time.time(),
            "benchmarks": {key: merged[key] for key in sorted(merged)},
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path
