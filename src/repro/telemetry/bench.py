"""Benchmark-timing export: the machine-readable perf trajectory.

``benchmarks/test_perf_*.py`` measure what a database system pays for
each estimator (ANALYZE-time build, optimization-time query batches).
:class:`BenchmarkExporter` collects those timings during a pytest
session and merges them into a JSON file — ``BENCH_perf.json`` at the
repository root — so successive PRs accumulate a comparable perf
trajectory instead of throwing the numbers away with the terminal
scrollback.

The file maps ``<group>.<name>`` to summary stats::

    {
      "schema": "repro.telemetry.bench/v1",
      "updated_unix": 1754480000.0,
      "benchmarks": {
        "perf_build.kernel_ns": {"mean_s": ..., "min_s": ..., ...}
      }
    }

Re-running a subset of the benchmarks only overwrites the entries it
measured; everything else is preserved.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Mapping

#: Schema identifier embedded in the export file.
BENCH_SCHEMA = "repro.telemetry.bench/v1"


def _stat(stats: object, attribute: str) -> float | None:
    """Pull one numeric attribute off a pytest-benchmark stats object."""
    value = getattr(stats, attribute, None)
    try:
        return None if value is None else float(value)
    except (TypeError, ValueError):
        return None


class BenchmarkExporter:
    """Accumulates benchmark timings and merges them into a JSON file."""

    def __init__(self) -> None:
        self._entries: dict[str, dict[str, object]] = {}

    def record(self, group: str, name: str, stats: object) -> None:
        """Record one benchmark's timing stats under ``group.name``.

        ``stats`` is a ``pytest-benchmark`` ``Stats`` object (or
        anything with ``mean``/``min``/``max``/``stddev``/``rounds``
        attributes); missing attributes are simply omitted.
        """
        entry: dict[str, object] = {}
        for attribute, key in (
            ("mean", "mean_s"),
            ("min", "min_s"),
            ("max", "max_s"),
            ("stddev", "stddev_s"),
            ("median", "median_s"),
        ):
            value = _stat(stats, attribute)
            if value is not None:
                entry[key] = value
        rounds = getattr(stats, "rounds", None)
        if rounds is not None:
            entry["rounds"] = int(rounds)
        self._entries[f"{group}.{name}"] = entry

    def record_seconds(self, group: str, name: str, seconds: float) -> None:
        """Record a single hand-timed measurement."""
        self._entries[f"{group}.{name}"] = {"mean_s": float(seconds), "rounds": 1}

    @property
    def entries(self) -> Mapping[str, Mapping[str, object]]:
        """Everything recorded so far."""
        return dict(self._entries)

    def export(self, path: pathlib.Path) -> pathlib.Path | None:
        """Merge the recorded entries into the JSON file at ``path``.

        Returns the path, or ``None`` when nothing was recorded (the
        file is left untouched so partial pytest runs don't erase it).
        """
        if not self._entries:
            return None
        path = pathlib.Path(path)
        merged: dict[str, object] = {}
        if path.exists():
            try:
                existing = json.loads(path.read_text())
                if isinstance(existing, dict) and existing.get("schema") == BENCH_SCHEMA:
                    merged = dict(existing.get("benchmarks", {}))
            except (OSError, json.JSONDecodeError):
                merged = {}
        merged.update(self._entries)
        payload = {
            "schema": BENCH_SCHEMA,
            "updated_unix": time.time(),
            "benchmarks": {key: merged[key] for key in sorted(merged)},
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path
