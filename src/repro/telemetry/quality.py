"""Accuracy telemetry: q-error and absolute error against ground truth.

Selectivity estimates are only observable as *good* or *bad* when the
true result is known — after a query executes (the feedback path),
when the evaluation harness replays a query file with exact counts, or
when a caller feeds an executed cardinality back to the planner.  This
module turns those moments into first-class metrics:

* ``quality.qerror`` / ``quality.qerror.<key>`` — the q-error
  ``max(est, truth) / min(est, truth)`` (both floored at
  :data:`QERROR_FLOOR` so empty results stay finite), the standard
  cardinality-estimation accuracy measure: symmetric, multiplicative,
  1.0 is perfect.
* ``quality.abs_error`` / ``quality.abs_error.<key>`` — absolute
  selectivity error ``|est - truth|``.
* ``quality.observations`` — how many (estimate, truth) pairs were
  recorded.

``<key>`` is the estimator class name, the table name, or both
(``<table>.<Class>``) — whatever the recording site knows.  The
(query, estimate, truth) stream this records is exactly what
workload-aware estimation work consumes (see PAPERS.md: online
learning from selectivities).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.telemetry.runtime import get_telemetry

if TYPE_CHECKING:
    from repro.telemetry.export import JsonlEventLog
    from repro.telemetry.runtime import Telemetry

#: Selectivity floor applied to both sides of the q-error ratio, so
#: zero-truth (or zero-estimate) queries produce a large-but-finite
#: q-error instead of a division by zero.
QERROR_FLOOR = 1e-6


def qerror(estimate: float, truth: float, floor: float = QERROR_FLOOR) -> float:
    """The q-error of one (estimate, truth) selectivity pair."""
    est = max(float(estimate), floor)
    true = max(float(truth), floor)
    return est / true if est >= true else true / est


def qerrors(
    estimates: np.ndarray, truths: np.ndarray, floor: float = QERROR_FLOOR
) -> np.ndarray:
    """Vectorized :func:`qerror` over parallel arrays."""
    est = np.maximum(np.asarray(estimates, dtype=np.float64), floor)
    true = np.maximum(np.asarray(truths, dtype=np.float64), floor)
    return np.maximum(est / true, true / est)


@dataclasses.dataclass(frozen=True)
class QualityRecord:
    """One recorded (estimate, truth) comparison."""

    estimate: float
    truth: float
    qerror: float
    abs_error: float


class QualityTracker:
    """Records estimate-accuracy metrics into a telemetry registry.

    Parameters
    ----------
    telemetry:
        Telemetry object to record into; ``None`` resolves the
        process-global object *per call*, so one tracker instance
        follows session swaps.
    event_log:
        Optional :class:`~repro.telemetry.export.JsonlEventLog`; when
        given, every recorded pair also appends one structured
        ``quality`` event.
    """

    def __init__(
        self,
        telemetry: "Telemetry | None" = None,
        event_log: "JsonlEventLog | None" = None,
    ) -> None:
        self._telemetry = telemetry
        self._event_log = event_log

    def _resolve(self) -> "Telemetry":
        return self._telemetry if self._telemetry is not None else get_telemetry()

    def record(
        self,
        estimate: float,
        truth: float,
        key: str | None = None,
    ) -> QualityRecord:
        """Record one (estimated, true) selectivity pair.

        Returns the computed :class:`QualityRecord` regardless of
        whether telemetry is enabled; metrics are only emitted when it
        is.
        """
        record = QualityRecord(
            estimate=float(estimate),
            truth=float(truth),
            qerror=qerror(estimate, truth),
            abs_error=abs(float(estimate) - float(truth)),
        )
        telemetry = self._resolve()
        if telemetry.enabled:
            metrics = telemetry.metrics
            metrics.inc("quality.observations")
            metrics.observe("quality.qerror", record.qerror)
            metrics.observe("quality.abs_error", record.abs_error)
            if key:
                metrics.observe(f"quality.qerror.{key}", record.qerror)
                metrics.observe(f"quality.abs_error.{key}", record.abs_error)
        if self._event_log is not None:
            self._event_log.emit(
                "quality",
                key=key,
                estimate=record.estimate,
                truth=record.truth,
                qerror=record.qerror,
                abs_error=record.abs_error,
            )
        return record

    def record_batch(
        self,
        estimates: np.ndarray,
        truths: np.ndarray,
        key: str | None = None,
    ) -> np.ndarray:
        """Record a whole workload of pairs; returns the q-errors.

        Batch metrics go through ``observe_many`` (one lock
        acquisition per series), so replaying a thousand-query file
        costs four registry operations, not four thousand.
        """
        est = np.asarray(estimates, dtype=np.float64)
        true = np.asarray(truths, dtype=np.float64)
        if est.shape != true.shape:
            raise ValueError(
                f"estimate/truth arrays differ in shape: {est.shape} vs {true.shape}"
            )
        q = qerrors(est, true)
        telemetry = self._resolve()
        if telemetry.enabled and q.size:
            abs_errors = np.abs(est - true)
            metrics = telemetry.metrics
            metrics.inc("quality.observations", q.size)
            metrics.observe_many("quality.qerror", q.ravel())
            metrics.observe_many("quality.abs_error", abs_errors.ravel())
            if key:
                metrics.observe_many(f"quality.qerror.{key}", q.ravel())
                metrics.observe_many(f"quality.abs_error.{key}", abs_errors.ravel())
        return q


#: Default tracker: records into whatever telemetry object is current.
_DEFAULT_TRACKER = QualityTracker()


def record_quality(
    estimate: float, truth: float, key: str | None = None
) -> QualityRecord:
    """Record one pair through the default tracker."""
    return _DEFAULT_TRACKER.record(estimate, truth, key)


def record_quality_batch(
    estimates: np.ndarray, truths: np.ndarray, key: str | None = None
) -> np.ndarray:
    """Record a workload of pairs through the default tracker."""
    return _DEFAULT_TRACKER.record_batch(estimates, truths, key)
