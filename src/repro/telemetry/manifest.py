"""Run manifests: one JSON record per traced experiment run.

A manifest captures everything needed to interpret (or learn from) an
experiment run after the fact: the dataset/config/seed, the error
metrics the run produced, and the telemetry snapshot — per-estimator
build/query span timings, counters, value histograms.  Query-driven
estimation work (feedback histograms, learned selectivity models)
consumes exactly this stream.

Manifests live under ``benchmarks/reports/manifests/`` by default; the
``REPRO_MANIFEST_DIR`` environment variable overrides the location
(used by tests and CI).  ``python -m repro stats`` aggregates whatever
is there.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import pathlib
import platform
import time
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

import numpy as np

if TYPE_CHECKING:
    from repro.experiments.harness import ExperimentConfig
    from repro.experiments.reporting import FigureResult
    from repro.telemetry.runtime import Telemetry

#: Schema identifier embedded in every manifest.
MANIFEST_SCHEMA = "repro.telemetry.manifest/v1"

#: Environment variable overriding the manifest directory.
MANIFEST_DIR_ENV = "REPRO_MANIFEST_DIR"


def _default_manifest_dir() -> pathlib.Path:
    """``<repo>/benchmarks/reports/manifests`` when run from a checkout."""
    root = pathlib.Path(__file__).resolve().parents[3]
    if (root / "benchmarks").is_dir():
        return root / "benchmarks" / "reports" / "manifests"
    return pathlib.Path.cwd() / "benchmarks" / "reports" / "manifests"


def manifest_dir() -> pathlib.Path:
    """Where manifests are written/read (honours ``REPRO_MANIFEST_DIR``)."""
    override = os.environ.get(MANIFEST_DIR_ENV)
    if override:
        return pathlib.Path(override)
    return _default_manifest_dir()


def to_jsonable(value: object) -> object:
    """Recursively convert numpy scalars/arrays and mappings to JSON types."""
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, Mapping):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    return value


def build_manifest(
    experiment: str,
    result: "FigureResult",
    config: "ExperimentConfig",
    telemetry: "Telemetry",
    *,
    duration_seconds: float | None = None,
) -> dict[str, object]:
    """Assemble the manifest dict for one completed experiment run."""
    return {
        "schema": MANIFEST_SCHEMA,
        "experiment": experiment,
        "figure_id": result.figure_id,
        "title": result.title,
        "created_unix": time.time(),
        "created_iso": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "config": to_jsonable(dataclasses.asdict(config)),
        "duration_seconds": duration_seconds,
        "rows": [to_jsonable(dict(row)) for row in result.rows],
        "notes": result.notes,
        "telemetry": to_jsonable(telemetry.snapshot()),
    }


def write_manifest(
    manifest: Mapping[str, object],
    directory: pathlib.Path | None = None,
) -> pathlib.Path:
    """Write one manifest as pretty-printed JSON; returns the path.

    File names are ``<experiment>-<unix-millis>.json`` so repeated runs
    of the same experiment accumulate instead of overwriting.
    """
    directory = manifest_dir() if directory is None else pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stamp = int(float(manifest.get("created_unix", time.time())) * 1000)
    path = directory / f"{manifest.get('experiment', 'run')}-{stamp}.json"
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def load_manifests(
    directory: pathlib.Path | None = None,
    on_skip: "Callable[[pathlib.Path, str], None] | None" = None,
) -> list[dict[str, object]]:
    """Load every readable manifest JSON in ``directory``, oldest first.

    Files that fail to parse or carry a foreign schema are skipped —
    the directory is a drop box, not a database — but each skip is
    reported through ``on_skip(path, reason)`` so callers can surface
    a corrupt drop instead of silently under-counting runs.
    """
    directory = manifest_dir() if directory is None else pathlib.Path(directory)
    if not directory.is_dir():
        return []
    manifests = []
    for path in sorted(directory.glob("*.json")):
        try:
            data = json.loads(path.read_text())
        except OSError as exc:
            if on_skip is not None:
                on_skip(path, f"unreadable: {exc}")
            continue
        except json.JSONDecodeError as exc:
            if on_skip is not None:
                on_skip(path, f"invalid JSON: {exc}")
            continue
        if not isinstance(data, dict) or data.get("schema") != MANIFEST_SCHEMA:
            if on_skip is not None:
                found = data.get("schema") if isinstance(data, dict) else type(data).__name__
                on_skip(path, f"foreign schema: {found!r} (expected {MANIFEST_SCHEMA!r})")
            continue
        data["_path"] = str(path)
        manifests.append(data)
    manifests.sort(key=lambda m: m.get("created_unix", 0.0))
    return manifests


def _error_columns(rows: Iterable[Mapping[str, object]]) -> dict[str, list[float]]:
    """Collect float-valued columns (the error metrics) across rows."""
    columns: dict[str, list[float]] = {}
    for row in rows:
        for key, value in row.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                columns.setdefault(str(key), []).append(float(value))
    return columns


def aggregate_manifests(
    directory: pathlib.Path | None = None,
    on_skip: "Callable[[pathlib.Path, str], None] | None" = None,
) -> list[dict[str, object]]:
    """Aggregate manifests into one summary row per experiment.

    Each row reports how often the experiment ran, the latest run's
    wall-clock, total build/query span time in the latest run, the mean
    of the latest run's error columns, and the latest run's p90 q-error
    when accuracy tracking recorded one — the at-a-glance trajectory
    ``python -m repro stats`` prints.
    """
    by_experiment: dict[str, list[dict[str, object]]] = {}
    for manifest in load_manifests(directory, on_skip):
        by_experiment.setdefault(str(manifest.get("experiment")), []).append(manifest)

    rows = []
    for experiment in sorted(by_experiment):
        runs = by_experiment[experiment]
        latest = runs[-1]
        snapshot = latest.get("telemetry", {})
        spans = snapshot.get("spans", {}).get("by_name", {})
        counters = snapshot.get("metrics", {}).get("counters", {})
        values = snapshot.get("metrics", {}).get("values", {})
        build = spans.get("estimator.build", {})
        query_seconds = sum(
            summary.get("total", 0.0)
            for name, summary in values.items()
            if name.startswith("estimator.query.seconds")
        )
        errors = _error_columns(latest.get("rows", []))
        mre_columns = {
            name: values for name, values in errors.items() if "MRE" in name
        } or errors
        mean_error = (
            sum(sum(v) for v in mre_columns.values())
            / max(sum(len(v) for v in mre_columns.values()), 1)
            if mre_columns
            else float("nan")
        )
        qerror = values.get("quality.qerror", {})
        qerror_p90 = qerror.get("p90") if isinstance(qerror, Mapping) else None
        rows.append(
            {
                "experiment": experiment,
                "runs": len(runs),
                "last run": str(latest.get("created_iso", "?")),
                "duration [s]": round(float(latest.get("duration_seconds") or 0.0), 3),
                "builds": int(counters.get("estimator.build", build.get("count", 0))),
                "build time [s]": round(float(build.get("total_s", 0.0)), 3),
                "queries": int(counters.get("estimator.query", 0)),
                "query time [s]": round(float(query_seconds), 3),
                "mean error": round(mean_error, 4) if mean_error == mean_error else "-",
                "p90 q-error": (
                    round(float(qerror_p90), 3)
                    if isinstance(qerror_p90, (int, float)) and math.isfinite(qerror_p90)
                    else "-"
                ),
            }
        )
    return rows
