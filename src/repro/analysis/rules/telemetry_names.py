"""Rule ``telemetry-naming``: recorded names must be registered.

A typo in a metric name (``harness.cel``) does not crash anything — it
silently splits a series and every dashboard, perf gate and manifest
aggregation downstream quietly loses data.  The registry in
:mod:`repro.telemetry.names` is the single source of truth; this rule
checks, at lint time, every *string literal* (and the static head of
every f-string) passed as the first argument to::

    <anything>.metrics.inc(name, ...)
    <anything>.metrics.observe(name, ...)
    <anything>.metrics.observe_many(name, ...)
    <anything>.metrics.set_gauge(name, ...)
    <anything>.metrics.time(name)
    <anything>.span(name, ...)

Dynamic segments are fine — ``f"harness.cell.seconds.{tag}"`` is
checked by its static head against the registered prefixes.  A name
built entirely at runtime cannot be checked and is skipped.

The telemetry package itself is exempt: it implements the recording
machinery (e.g. the ``span.<name>`` mirror series) rather than naming
new instrumentation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, ModuleInfo, dotted_name, finding
from repro.analysis.project import ProjectIndex
from repro.telemetry.names import is_registered, is_registered_prefix

_METRIC_METHODS = frozenset({"inc", "observe", "observe_many", "time", "set_gauge"})


def _recording_call(node: ast.Call) -> str | None:
    """Return ``"metrics.<m>"`` / ``"span"`` when ``node`` records telemetry."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr == "span":
        receiver = dotted_name(func.value)
        # `<telemetry-ish>.span(...)`: accept any receiver whose name
        # mentions telemetry/session (telemetry.span, session.span, t.span).
        if receiver is not None and not receiver.endswith(".metrics"):
            return "span"
        return None
    if func.attr in _METRIC_METHODS:
        receiver = dotted_name(func.value)
        if receiver is not None and (
            receiver == "metrics" or receiver.endswith(".metrics")
        ):
            return f"metrics.{func.attr}"
    return None


def _static_parts(arg: ast.expr) -> tuple[str, bool] | None:
    """``(static_text, is_complete)`` for a literal or f-string name arg."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value, True
    if isinstance(arg, ast.JoinedStr):
        head: list[str] = []
        complete = True
        for value in arg.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                head.append(value.value)
            else:
                complete = False
                break
        return "".join(head), complete
    return None


def _in_telemetry_package(module: ModuleInfo) -> bool:
    parts = module.path.parts
    return "telemetry" in parts and "repro" in parts


class TelemetryNamingRule:
    name = "telemetry-naming"
    description = (
        "span/metric name literals must match the registry in "
        "repro.telemetry.names (typos silently split series)"
    )

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        del project
        if _in_telemetry_package(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = _recording_call(node)
            if kind is None or not node.args:
                continue
            parts = _static_parts(node.args[0])
            if parts is None:
                continue  # fully dynamic name; unverifiable statically
            static, complete = parts
            if complete:
                ok = is_registered(static)
            else:
                ok = is_registered_prefix(static)
            if not ok:
                shown = static if complete else static + "{…}"
                yield finding(
                    module,
                    node,
                    self.name,
                    f"{kind}({shown!r}) is not in the telemetry name registry; "
                    "fix the typo or register the name in "
                    "repro/telemetry/names.py (see docs/OBSERVABILITY.md)",
                )
