"""Rule ``numeric-safety``: floating-point and error-handling hygiene.

Three checks, each targeting a defect class that has bitten numeric
code in this repo or its exemplars:

* **inexact float equality** — ``x == 0.05`` / ``x != 0.3``: a float
  literal whose decimal text is *not* exactly representable in binary
  (its value as a fraction has a non-power-of-two denominator) is
  already a different number than the author wrote, so ``==`` against
  it compares rounding artifacts; use ``np.isclose`` /
  ``math.isclose`` with an explicit tolerance.  *Dyadic* literals
  (``0.0``, ``0.5``, ``2.5``) are exempt: they are exactly
  representable, and equality against them is idiomatic for
  degenerate-case guards (``if weight == 0.0``) and pass-through
  exactness assertions (``interval.clip(0.5) == 0.5``).
* **bare except** — ``except:`` swallows ``KeyboardInterrupt`` and
  ``SystemExit`` and hides real defects behind fallback paths; name
  the exceptions (at minimum ``except Exception``).
* **silenced errstate** — ``np.errstate(divide="ignore")`` without an
  adjacent comment: suppressing IEEE warnings is sometimes right
  (vectorized guards handle the NaN/inf afterwards) but must say so —
  any comment on the same line or the line above satisfies the rule.
"""

from __future__ import annotations

import ast
from decimal import Decimal, InvalidOperation
from fractions import Fraction
from typing import Iterator

from repro.analysis.findings import Finding, ModuleInfo, dotted_name, finding
from repro.analysis.project import ProjectIndex


def _literal_text(module: ModuleInfo, node: ast.Constant) -> str | None:
    line = node.lineno - 1
    end_line = (node.end_lineno or node.lineno) - 1
    if line != end_line or line >= len(module.source_lines):
        return None
    return module.source_lines[line][node.col_offset : node.end_col_offset]


def _is_inexact_float(module: ModuleInfo, node: ast.expr) -> bool:
    """True for a float literal whose written decimal value is not dyadic."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    if not isinstance(node, ast.Constant):
        return False
    value = node.value
    if not isinstance(value, float) or isinstance(value, bool):
        return False
    if value % 1.0 == 0.0:
        return False
    text = _literal_text(module, node)
    if text is not None:
        try:
            denominator = Fraction(Decimal(text.replace("_", ""))).denominator
        except (InvalidOperation, ValueError):
            return True
        return denominator & (denominator - 1) != 0
    return True


def _errstate_ignores(node: ast.Call) -> bool:
    target = dotted_name(node.func)
    if target is None or target.rsplit(".", 1)[-1] != "errstate":
        return False
    return any(
        isinstance(kw.value, ast.Constant) and kw.value.value == "ignore"
        for kw in node.keywords
    )


class NumericSafetyRule:
    name = "numeric-safety"
    description = (
        "no equality against inexact float literals, no bare except, no "
        "unexplained np.errstate(...='ignore')"
    )

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        del project
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for op in node.ops:
                    if not isinstance(op, (ast.Eq, ast.NotEq)):
                        continue
                    if any(_is_inexact_float(module, x) for x in operands):
                        yield finding(
                            module,
                            node,
                            self.name,
                            "equality against a float literal that is not "
                            "exactly representable in binary; the stored value "
                            "already differs from the written one — use "
                            "np.isclose/math.isclose with an explicit tolerance",
                        )
                        break
            elif isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    yield finding(
                        module,
                        node,
                        self.name,
                        "bare 'except:' swallows KeyboardInterrupt/SystemExit "
                        "and hides defects; catch named exceptions (at minimum "
                        "'except Exception')",
                    )
            elif isinstance(node, ast.Call):
                if _errstate_ignores(node) and not module.has_adjacent_comment(
                    node.lineno
                ):
                    yield finding(
                        module,
                        node,
                        self.name,
                        "np.errstate(...='ignore') without a justification "
                        "comment; say on the same line (or the line above) how "
                        "the suppressed NaN/inf values are handled",
                    )
