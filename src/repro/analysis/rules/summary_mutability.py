"""Rule ``summary-mutability``: summaries mutate, estimators never do.

The incremental-ANALYZE lifecycle (docs/STREAMING.md) splits statistics
into exactly two kinds of object:

* **Live summaries** (``*Summary`` classes with mutators) absorb
  appends/deletes and merge with partial summaries.  A class that opts
  into mutation must implement the *whole* lifecycle — ``update``,
  ``delete``, ``merge`` and ``freeze`` — because the catalog's refresh
  path assumes any mergeable summary can also replay deletions and be
  frozen into estimator inputs.  A half-lifecycle summary silently
  downgrades every refresh to a full rebuild.
* **Frozen artifacts** (``Frozen*Summary`` classes and everything in
  the estimator hierarchy) are immutable snapshots shared across
  threads and serving snapshots.  A ``Frozen*Summary`` must be a
  ``@dataclass(frozen=True)`` and must not assign to ``self`` outside
  ``__init__``/``__post_init__``; an estimator-hierarchy class must
  not grow ``update``/``delete``/``merge`` methods at all — incremental
  maintenance belongs in the summary layer, with the estimator rebuilt
  from the re-frozen summary (see ``frozen-after-build``).

Plain frozen dataclasses that merely *end* in ``Summary`` without
mutators (e.g. telemetry's ``ValueSummary``) are untouched: the rule
keys off the lifecycle methods, not the name alone.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, ModuleInfo, finding
from repro.analysis.project import ProjectIndex

#: Methods that mark a class as a *live* (mutable) summary.
_MUTATORS = ("update", "delete", "merge")

#: The full lifecycle every live summary must implement.
_LIFECYCLE = ("update", "delete", "merge", "freeze")

#: Methods allowed to assign to ``self`` inside a ``Frozen*Summary``
#: (frozen dataclasses use ``object.__setattr__`` anyway, but a plain
#: ``self.x = ...`` in construction code is tolerable there).
_FROZEN_CONSTRUCTION = frozenset({"__init__", "__post_init__"})


def _is_frozen_dataclass(cls: ast.ClassDef) -> bool:
    """Whether the class carries ``@dataclass(frozen=True)``."""
    for decorator in cls.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "frozen"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


def _method_names(cls: ast.ClassDef) -> set[str]:
    return {
        node.name
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _self_writes(
    method: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.Attribute]:
    for node in ast.walk(method):
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            for attr in ast.walk(target):
                if (
                    isinstance(attr, ast.Attribute)
                    and isinstance(attr.value, ast.Name)
                    and attr.value.id == "self"
                ):
                    yield attr


class SummaryMutabilityRule:
    name = "summary-mutability"
    description = (
        "live summaries implement the full update/delete/merge/freeze "
        "lifecycle; Frozen*Summary classes and estimators stay immutable"
    )

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            methods = _method_names(cls)
            if project.is_estimator_class(cls):
                yield from self._check_estimator(module, cls, methods)
                continue
            if cls.name.startswith("Frozen") and cls.name.endswith("Summary"):
                yield from self._check_frozen(module, cls)
            elif cls.name.endswith("Summary") and any(
                mutator in methods for mutator in _MUTATORS
            ):
                yield from self._check_live(module, cls, methods)

    def _check_estimator(
        self, module: ModuleInfo, cls: ast.ClassDef, methods: set[str]
    ) -> Iterator[Finding]:
        for mutator in _MUTATORS:
            if mutator in methods:
                yield finding(
                    module,
                    cls,
                    self.name,
                    f"estimator {cls.name} defines {mutator}(); estimators are "
                    "frozen-after-build — incremental maintenance belongs in a "
                    "ColumnSummary, with the estimator rebuilt from freeze()",
                )

    def _check_frozen(
        self, module: ModuleInfo, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        if not _is_frozen_dataclass(cls):
            yield finding(
                module,
                cls,
                self.name,
                f"{cls.name} is named Frozen* but is not a "
                "@dataclass(frozen=True); frozen summaries are shared across "
                "serving snapshots and must be structurally immutable",
            )
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in _FROZEN_CONSTRUCTION:
                continue
            for attr in _self_writes(method):
                yield finding(
                    module,
                    attr,
                    self.name,
                    f"{cls.name}.{method.name} writes self.{attr.attr}; a "
                    "Frozen*Summary never mutates after construction — derive "
                    "the value in a property or build a new instance",
                )

    def _check_live(
        self, module: ModuleInfo, cls: ast.ClassDef, methods: set[str]
    ) -> Iterator[Finding]:
        missing = [stage for stage in _LIFECYCLE if stage not in methods]
        if missing:
            yield finding(
                module,
                cls,
                self.name,
                f"live summary {cls.name} defines a mutator but lacks "
                f"{', '.join(missing)}(); partial lifecycles silently force "
                "full rebuilds — implement update/delete/merge/freeze or "
                "rename the class out of the *Summary convention",
            )
