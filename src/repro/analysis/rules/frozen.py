"""Rule ``frozen-after-build``: estimators are immutable once built.

The ROADMAP's serving tier swaps per-table estimator snapshots
atomically so readers never block on ANALYZE — which is only safe if a
built estimator never mutates.  The same property backs the
fingerprint-keyed statistics cache (a cached estimator is shared across
threads) and pickling round-trips.

The rule flags assignments to ``self.*`` (plain, augmented, annotated,
and tuple-unpacking targets) inside methods of estimator-hierarchy
classes **outside** the construction surface:

* ``__init__`` / ``__setstate__`` / ``__init_subclass__``,
* ``build`` / ``rebuild`` and any ``_build*`` helper (streaming
  maintenance will rebuild in place behind a swap),
* properties with an explicit ``setter`` decorator are *not* exempt —
  a settable property on an estimator is precisely the mutation the
  rule exists to catch.

Legitimate lazy caches must opt out per line with
``# repro: allow[frozen-after-build] — <why sharing stays safe>``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, ModuleInfo, finding
from repro.analysis.project import ProjectIndex

_ALLOWED_METHODS = frozenset({"__init__", "__setstate__", "__init_subclass__", "build", "rebuild"})


def _is_construction_method(name: str) -> bool:
    return name in _ALLOWED_METHODS or name.startswith("_build")


def _self_attribute_targets(node: ast.AST) -> Iterator[ast.Attribute]:
    """Attribute targets rooted at ``self`` within an assignment target."""
    for target in ast.walk(node):
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            yield target


class FrozenAfterBuildRule:
    name = "frozen-after-build"
    description = (
        "estimator attributes may only be written during construction "
        "(__init__/build); built estimators are shared snapshots"
    )

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            if not project.is_estimator_class(cls):
                continue
            for method in cls.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if _is_construction_method(method.name):
                    continue
                yield from self._check_method(module, cls, method)

    def _check_method(
        self,
        module: ModuleInfo,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                for attr in _self_attribute_targets(target):
                    yield finding(
                        module,
                        attr,
                        self.name,
                        f"{cls.name}.{method.name} writes self.{attr.attr} after "
                        "construction; built estimators are immutable snapshots "
                        "(atomic swap + shared cache safety) — move the write "
                        "into __init__/build or justify a lazy cache via pragma",
                    )
