"""The project-specific rule catalog.

Each module defines one rule class; :data:`ALL_RULES` is the ordered
catalog the engine runs.  See ``docs/STATIC_ANALYSIS.md`` for the
rationale behind every rule.
"""

from __future__ import annotations

from repro.analysis.findings import Rule
from repro.analysis.rules.conformance import EstimatorConformanceRule
from repro.analysis.rules.frozen import FrozenAfterBuildRule
from repro.analysis.rules.numeric_safety import NumericSafetyRule
from repro.analysis.rules.seeded_rng import SeededRngRule
from repro.analysis.rules.serving_errors import ServingErrorsRule
from repro.analysis.rules.summary_mutability import SummaryMutabilityRule
from repro.analysis.rules.telemetry_names import TelemetryNamingRule
from repro.analysis.rules.thread_safety import ThreadSafetyRule

ALL_RULES: tuple[Rule, ...] = (
    SeededRngRule(),
    EstimatorConformanceRule(),
    FrozenAfterBuildRule(),
    TelemetryNamingRule(),
    NumericSafetyRule(),
    ThreadSafetyRule(),
    ServingErrorsRule(),
    SummaryMutabilityRule(),
)

RULES_BY_NAME: dict[str, Rule] = {rule.name: rule for rule in ALL_RULES}

__all__ = [
    "ALL_RULES",
    "RULES_BY_NAME",
    "EstimatorConformanceRule",
    "FrozenAfterBuildRule",
    "NumericSafetyRule",
    "SeededRngRule",
    "ServingErrorsRule",
    "SummaryMutabilityRule",
    "TelemetryNamingRule",
    "ThreadSafetyRule",
]
