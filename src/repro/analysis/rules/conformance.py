"""Rule ``estimator-conformance``: concrete estimators honor the contract.

The comparisons the repo reproduces are only fair when every estimator
enforces the same input contract and serves batches through the same
vectorized path (PR 4's contract).  For every *concrete* class in the
estimator hierarchy (see :mod:`repro.analysis.project`) this rule
checks:

* ``__init__``/``build`` taking a raw sample (a parameter named
  ``sample``/``samples``/``values``/``data``) must validate it: the
  body must reference :func:`repro.core.base.validate_sample`,
  delegate to ``super().__init__``, or construct another estimator
  class (which validates in turn — the ASH builds equi-width
  components).  Constructors that take no raw sample (the uniform
  estimator, pre-aggregated histogram building blocks) are exempt.
* ``selectivity`` must reference ``validate_query`` or delegate to the
  (validated) batch path ``self.selectivities``.
* ``selectivities`` must reference ``validate_query_batch`` (or
  delegate to ``super().selectivities`` / another estimator's batch
  method) and must **not** be a Python ``for``/``while`` loop over
  ``self.selectivity`` — that silently reverts the class to the
  pre-PR-4 scalar path, three orders of magnitude slower at serving
  batch sizes.

Abstract classes are exempt: the scalar-loop default on the abstract
base *is* the documented fallback for estimators without a vectorized
path, which must opt out explicitly via pragma when they keep it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, ModuleInfo, dotted_name, finding
from repro.analysis.project import ProjectIndex

_VALIDATORS_SAMPLE = frozenset({"validate_sample"})
_SAMPLE_PARAMS = frozenset({"sample", "samples", "values", "data"})
_VALIDATORS_QUERY = frozenset({"validate_query", "validate_query_batch"})
_VALIDATOR_BATCH = "validate_query_batch"


def _called_names(node: ast.AST) -> set[str]:
    """Final identifiers of every call target inside ``node``."""
    names: set[str] = set()
    for item in ast.walk(node):
        if isinstance(item, ast.Call):
            dotted = dotted_name(item.func)
            if dotted is not None:
                names.add(dotted.rsplit(".", 1)[-1])
                names.add(dotted)
    return names


def _calls_super(names: set[str], method: str) -> bool:
    return any(n.startswith("super") and n.endswith(method) for n in names) or (
        "super" in names
    )


_LOOP_NODES = (ast.For, ast.While, ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)


def _loops_over_scalar_selectivity(fn: ast.FunctionDef) -> ast.AST | None:
    """The first loop/comprehension that calls ``self.selectivity``."""
    for node in ast.walk(fn):
        if isinstance(node, _LOOP_NODES):
            for item in ast.walk(node):
                if isinstance(item, ast.Call):
                    dotted = dotted_name(item.func)
                    if dotted in {"self.selectivity", "self.selectivity_scan"}:
                        return node
    return None


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        item.name: item
        for item in cls.body
        if isinstance(item, ast.FunctionDef)
    }


class EstimatorConformanceRule:
    name = "estimator-conformance"
    description = (
        "concrete estimators must validate samples/queries through the "
        "shared validators and keep selectivities() vectorized"
    )

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not project.is_estimator_class(node) or project.is_abstract(node):
                continue
            methods = _methods(node)
            yield from self._check_build(module, node, methods, project)
            yield from self._check_scalar(module, node, methods)
            yield from self._check_batch(module, node, methods)

    def _check_build(
        self,
        module: ModuleInfo,
        cls: ast.ClassDef,
        methods: dict[str, ast.FunctionDef],
        project: ProjectIndex,
    ) -> Iterator[Finding]:
        for name in ("__init__", "build"):
            fn = methods.get(name)
            if fn is None:
                continue
            params = {arg.arg for arg in (*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs)}
            if not params & _SAMPLE_PARAMS:
                continue  # no raw sample accepted, nothing to validate
            called = _called_names(fn)
            if called & _VALIDATORS_SAMPLE or _calls_super(called, name):
                continue
            last_segments = {n.rsplit(".", 1)[-1] for n in called}
            if last_segments & (project.estimator_class_names - {cls.name}):
                continue  # builds component estimators, which validate in turn
            yield finding(
                module,
                fn,
                self.name,
                f"{cls.name}.{name} accepts a raw sample but neither calls "
                "validate_sample, delegates to super(), nor builds a "
                "validating component estimator "
                "(repro.core.base.validate_sample is the contract)",
            )

    def _check_scalar(
        self,
        module: ModuleInfo,
        cls: ast.ClassDef,
        methods: dict[str, ast.FunctionDef],
    ) -> Iterator[Finding]:
        fn = methods.get("selectivity")
        if fn is None:
            return
        called = _called_names(fn)
        if called & _VALIDATORS_QUERY or "self.selectivities" in called or _calls_super(
            called, "selectivity"
        ):
            return
        yield finding(
            module,
            fn,
            self.name,
            f"{cls.name}.selectivity does not validate its query range; call "
            "validate_query(a, b) or delegate to the validated batch path "
            "self.selectivities",
        )

    def _check_batch(
        self,
        module: ModuleInfo,
        cls: ast.ClassDef,
        methods: dict[str, ast.FunctionDef],
    ) -> Iterator[Finding]:
        fn = methods.get("selectivities")
        if fn is None:
            return
        loop = _loops_over_scalar_selectivity(fn)
        if loop is not None:
            yield finding(
                module,
                loop,
                self.name,
                f"{cls.name}.selectivities loops over self.selectivity — the "
                "scalar path; serve batches through the vectorized contract "
                "(searchsorted windows + segmented sums) or inherit the base "
                "fallback instead of redefining it",
            )
        called = _called_names(fn)
        delegates = any(n.endswith(".selectivities") and "." in n for n in called)
        if (
            _VALIDATOR_BATCH not in called
            and not _calls_super(called, "selectivities")
            and not delegates
        ):
            yield finding(
                module,
                fn,
                self.name,
                f"{cls.name}.selectivities must validate the whole batch up "
                "front with validate_query_batch (InvalidQueryError before any "
                "evaluation work) or delegate to a method that does",
            )
