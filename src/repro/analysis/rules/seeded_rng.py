"""Rule ``seeded-rng``: every random draw must be reproducibly seeded.

The paper's comparisons are only meaningful when every estimator sees
the same data: a single unseeded generator makes a figure
unreproducible and turns cross-estimator deltas into noise.  Two
patterns are flagged:

* ``np.random.default_rng()`` (or with a literal ``None``) — fresh OS
  entropy; the call must receive an explicit seed expression.  A
  non-``None`` argument is accepted even when it is a variable: the
  caller is then responsible for threading a seed through, which is
  exactly the convention ``Relation.sample(seed=...)`` follows.
* any *legacy* ``np.random.<name>`` access — the module-level
  global-state API (``np.random.seed``, ``np.random.normal``,
  ``np.random.RandomState``...).  Global state is shared across
  threads, so the parallel harness would make draws order-dependent.
  Only the modern generator surface (``default_rng``, ``Generator``,
  ``SeedSequence`` and the bit generators) is allowed.

``from numpy.random import default_rng`` style imports are tracked so
renamed imports do not evade the check.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, ModuleInfo, dotted_name, finding
from repro.analysis.project import ProjectIndex

#: The modern, explicitly-seeded surface of ``numpy.random``.
_ALLOWED_RANDOM_ATTRS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


def _random_module_aliases(tree: ast.Module) -> set[str]:
    """Names that refer to the ``numpy.random`` module in this file."""
    aliases = {"np.random", "numpy.random"}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "numpy.random":
                    aliases.add(item.asname or "numpy.random")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy" and node.level == 0:
                for item in node.names:
                    if item.name == "random":
                        aliases.add(item.asname or "random")
    return aliases


def _default_rng_aliases(tree: ast.Module) -> set[str]:
    """Bare names bound to ``numpy.random.default_rng`` via imports."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
            for item in node.names:
                if item.name == "default_rng":
                    names.add(item.asname or "default_rng")
    return names


class SeededRngRule:
    name = "seeded-rng"
    description = (
        "np.random.default_rng(...) must receive an explicit seed; the "
        "legacy global-state np.random API is forbidden"
    )

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        del project
        random_aliases = _random_module_aliases(module.tree)
        default_rng_names = _default_rng_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                target = dotted_name(node.func)
                is_default_rng = target in default_rng_names or (
                    target is not None
                    and target.endswith(".default_rng")
                    and target.rsplit(".", 1)[0] in random_aliases
                )
                if is_default_rng and _is_unseeded(node):
                    yield finding(
                        module,
                        node,
                        self.name,
                        "default_rng() without an explicit seed draws fresh OS "
                        "entropy; pass a seed expression (derive one with "
                        "np.random.SeedSequence if composing seeds)",
                    )
            elif isinstance(node, ast.Attribute):
                target = dotted_name(node)
                if target is None:
                    continue
                head, _, attr = target.rpartition(".")
                if head in random_aliases and attr not in _ALLOWED_RANDOM_ATTRS:
                    yield finding(
                        module,
                        node,
                        self.name,
                        f"legacy global-state RNG access np.random.{attr}; use an "
                        "explicitly seeded np.random.default_rng(seed) generator",
                    )


def _is_unseeded(call: ast.Call) -> bool:
    """No positional/keyword seed, or a literal ``None`` seed."""
    seed: ast.expr | None = None
    if call.args:
        seed = call.args[0]
    else:
        for kw in call.keywords:
            if kw.arg == "seed" or kw.arg is None:
                seed = kw.value
                break
    if seed is None:
        return True
    return isinstance(seed, ast.Constant) and seed.value is None
