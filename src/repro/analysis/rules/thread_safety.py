"""Rule ``thread-safety``: module-level mutable state needs a lock.

The experiment harness runs cells on a thread pool and the planned
serving tier is concurrent by construction, so any module in their
import closure may execute on several threads at once.  A module-level
*empty* mutable container (``_cache = {}``, ``_registry = []``) is
almost always a mutation target and therefore a data race waiting for
load.

Flagged: module-level bindings of empty ``dict``/``list``/``set``
displays or bare constructor calls (``dict()``, ``list()``, ``set()``,
``collections.defaultdict(...)``, ``collections.deque()``), unless

* the module also binds a ``threading.Lock()``/``RLock()`` at module
  level (evidence of a lock discipline — the PR-4 telemetry fixes
  established exactly this pattern), or
* the value is ``threading.local()`` (per-thread state is safe), or
* the binding sits inside ``if TYPE_CHECKING:``.

*Populated* literals (``_ALIASES = {"ci": "iw"}``) are treated as
read-only lookup tables and left alone — the convention this codebase
follows — so the rule targets accumulating state, not data tables.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, ModuleInfo, dotted_name, finding
from repro.analysis.project import ProjectIndex

_MUTABLE_CONSTRUCTORS = frozenset({"dict", "list", "set", "defaultdict", "deque", "OrderedDict", "Counter"})
_LOCK_CONSTRUCTORS = frozenset({"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})


def _last_segment(node: ast.expr) -> str | None:
    name = dotted_name(node)
    return None if name is None else name.rsplit(".", 1)[-1]


def _is_empty_mutable(value: ast.expr) -> bool:
    if isinstance(value, (ast.Dict,)) and not value.keys:
        return True
    if isinstance(value, (ast.List, ast.Set)) and not value.elts:
        return True
    if isinstance(value, ast.Call):
        name = _last_segment(value.func)
        if name in _MUTABLE_CONSTRUCTORS:
            # defaultdict(list) is empty-at-birth regardless of args;
            # dict(a=1) / list(seq) are populated tables.
            if name in {"defaultdict", "deque", "OrderedDict", "Counter"}:
                return True
            return not value.args and not value.keywords
    return False


def _module_has_lock(tree: ast.Module) -> bool:
    for node in tree.body:
        values: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            values = [node.value]
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            values = [node.value]
        for value in values:
            if isinstance(value, ast.Call) and _last_segment(value.func) in _LOCK_CONSTRUCTORS:
                return True
    return False


def _is_thread_local(value: ast.expr) -> bool:
    return isinstance(value, ast.Call) and _last_segment(value.func) == "local"


def _module_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Top-level statements, descending into plain ``if`` blocks except
    ``if TYPE_CHECKING:``."""
    for node in tree.body:
        if isinstance(node, ast.If):
            test = dotted_name(node.test)
            if test is not None and test.rsplit(".", 1)[-1] == "TYPE_CHECKING":
                continue
            yield from node.body
            yield from node.orelse
        else:
            yield node


class ThreadSafetyRule:
    name = "thread-safety"
    description = (
        "module-level empty mutable containers must be lock-guarded "
        "(module-level Lock) or thread-local"
    )

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        del project
        has_lock = _module_has_lock(module.tree)
        for node in _module_level_statements(module.tree):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if target is None or value is None or not isinstance(target, ast.Name):
                continue
            if _is_thread_local(value) or has_lock:
                continue
            if _is_empty_mutable(value):
                yield finding(
                    module,
                    node,
                    self.name,
                    f"module-level mutable container {target.id!r} without a "
                    "module-level lock; the parallel harness imports this on "
                    "worker threads — guard it with threading.Lock, make it "
                    "threading.local(), or justify read-only use via pragma",
                )
