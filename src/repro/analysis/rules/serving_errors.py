"""Rule ``serving-errors``: no silent swallowing in the serving tier.

The whole point of :mod:`repro.serving` is *typed* failure: every
fault either surfaces as a :class:`~repro.serving.errors.ServingError`
subclass or is deliberately converted into a recorded degradation
step.  An ``except`` that quietly absorbs an exception defeats both —
the breaker never learns, the metrics never move, and a chaos test
passes for the wrong reason.

Flagged: any ``except`` handler in a module under ``repro/serving``
whose body contains no ``raise`` (bare re-raise, a wrapped raise, or
``raise ... from ...`` all count; ``raise`` statements inside nested
function/class definitions do not).  Handlers that intentionally
convert a failure into fallback behavior carry the standard
suppression pragma with its mandatory reason::

    except Exception as exc:  # repro: allow[serving-errors] — recorded in causes; degrades to the next tier
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, ModuleInfo, finding
from repro.analysis.project import ProjectIndex

#: Path fragment identifying the serving package.
_SERVING_PARTS = ("repro", "serving")


def _in_serving_package(module: ModuleInfo) -> bool:
    parts = module.path.parts
    for index in range(len(parts) - 1):
        if parts[index : index + 2] == _SERVING_PARTS:
            return True
    return False


def _contains_raise(body: "list[ast.stmt]") -> bool:
    """Whether any statement (not descending into nested defs) raises."""
    stack: list[ast.stmt] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # a nested def's raise doesn't run in the handler
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, (ast.ExceptHandler, ast.match_case)):
                stack.extend(child.body)
    return False


class ServingErrorsRule:
    name = "serving-errors"
    description = (
        "except handlers in repro.serving must re-raise or wrap into "
        "the typed serving-error hierarchy (or carry a pragma)"
    )

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        del project
        if not _in_serving_package(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _contains_raise(node.body):
                continue
            yield finding(
                module,
                node,
                self.name,
                "except handler swallows the exception; re-raise, wrap it "
                "into the ServingError hierarchy, or justify the fallback "
                "with '# repro: allow[serving-errors] — why'",
            )
