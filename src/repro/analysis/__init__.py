"""``repro.analysis``: project-specific static analysis.

A sanitizer pass for a numerics codebase: AST-based lints that enforce
the estimator-comparison invariants the paper's conclusions rest on
(deterministic seeding, validated queries, vectorized batch serving,
immutable built estimators, registered telemetry names, numeric and
thread-safety hygiene), plus a strict typing gate.

Run it locally::

    PYTHONPATH=src python -m repro.analysis src tests benchmarks
    PYTHONPATH=src python -m repro.analysis --list-rules
    PYTHONPATH=src python -m repro.analysis --typing     # also run mypy --strict

See ``docs/STATIC_ANALYSIS.md`` for the rule catalog, per-rule
rationale and the suppression-pragma syntax
(``# repro: allow[rule-name] — reason``).
"""

from repro.analysis.engine import (
    PARSE_ERROR_RULE,
    analyze_modules,
    analyze_paths,
    analyze_source,
    discover_files,
    select_rules,
)
from repro.analysis.findings import Finding, ModuleInfo
from repro.analysis.pragmas import PRAGMA_RULE, Pragma, parse_pragmas
from repro.analysis.rules import ALL_RULES, RULES_BY_NAME
from repro.analysis.typing_gate import TypingGateResult, mypy_available, run_typing_gate

__all__ = [
    "ALL_RULES",
    "Finding",
    "ModuleInfo",
    "PARSE_ERROR_RULE",
    "PRAGMA_RULE",
    "Pragma",
    "RULES_BY_NAME",
    "TypingGateResult",
    "analyze_modules",
    "analyze_paths",
    "analyze_source",
    "discover_files",
    "mypy_available",
    "parse_pragmas",
    "run_typing_gate",
    "select_rules",
]
