"""Suppression pragmas: ``# repro: allow[rule-name] — reason``.

A finding can be silenced *only* with a written justification.  The
pragma names the rule it silences and must carry a non-empty reason
after an em dash (``—``) or a double hyphen (``--``)::

    with np.errstate(divide="ignore"):  # repro: allow[numeric-safety] — log(0) handled below
    _cache = {}  # repro: allow[thread-safety] -- guarded by _cache_lock in every accessor

A pragma on the violating line suppresses findings on that line; a
pragma on a line of its own suppresses findings on the next line.  The
``allow-file`` form silences one rule for the whole module — for files
whose *purpose* conflicts with a rule (e.g. the telemetry test suite
records synthetic span names on purpose)::

    # repro: allow-file[telemetry-naming] — synthetic names exercise the tracing machinery

Malformed pragmas (unknown rule name, missing reason) are themselves
reported as ``pragma`` findings, so a suppression can never silently
rot.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Iterable, Iterator

from repro.analysis.findings import Finding, ModuleInfo

PRAGMA_RULE = "pragma"

#: Matches the allow-pragma head; the separator and reason are
#: validated separately so a missing reason produces a precise
#: diagnostic rather than a silent non-match.
_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow(?P<scope>-file)?\[(?P<rule>[^\]]*)\]\s*(?P<rest>.*)$"
)
_REASON_RE = re.compile(r"^(?:—|–|--)\s*(?P<reason>\S.*)$")


@dataclasses.dataclass(frozen=True)
class Pragma:
    """One parsed suppression pragma."""

    line: int
    rule: str
    reason: str
    #: Line whose findings this pragma suppresses (the pragma's own
    #: line, or the next line for standalone comment lines).  ``None``
    #: for file-scoped pragmas, which suppress the rule everywhere in
    #: the module.
    target_line: int | None


def _is_standalone_comment(module: ModuleInfo, line: int) -> bool:
    text = module.source_lines[line - 1] if line - 1 < len(module.source_lines) else ""
    return text.lstrip().startswith("#")


def parse_pragmas(
    module: ModuleInfo, known_rules: Iterable[str]
) -> tuple[list[Pragma], list[Finding]]:
    """Extract pragmas from ``module``; malformed ones become findings."""
    known = set(known_rules)
    pragmas: list[Pragma] = []
    problems: list[Finding] = []
    for line, comment in sorted(module.comments.items()):
        match = _PRAGMA_RE.search(comment)
        if match is None:
            if "repro:" in comment and "allow" in comment:
                problems.append(
                    Finding(
                        path=str(module.path),
                        line=line,
                        col=1,
                        rule=PRAGMA_RULE,
                        message=(
                            "malformed suppression pragma; expected "
                            "'# repro: allow[rule-name] — reason'"
                        ),
                    )
                )
            continue
        rule = match.group("rule").strip()
        if rule not in known:
            problems.append(
                Finding(
                    path=str(module.path),
                    line=line,
                    col=1,
                    rule=PRAGMA_RULE,
                    message=f"pragma names unknown rule {rule!r}; known rules: "
                    + ", ".join(sorted(known)),
                )
            )
            continue
        file_scoped = match.group("scope") is not None
        reason_match = _REASON_RE.match(match.group("rest").strip())
        if reason_match is None:
            form = "allow-file" if file_scoped else "allow"
            problems.append(
                Finding(
                    path=str(module.path),
                    line=line,
                    col=1,
                    rule=PRAGMA_RULE,
                    message=(
                        f"pragma {form}[{rule}] is missing its reason; write "
                        f"'# repro: {form}[{rule}] — <why this is safe>'"
                    ),
                )
            )
            continue
        if file_scoped:
            target: int | None = None
        else:
            target = line + 1 if _is_standalone_comment(module, line) else line
        pragmas.append(
            Pragma(
                line=line,
                rule=rule,
                reason=reason_match.group("reason").strip(),
                target_line=target,
            )
        )
    return pragmas, problems


def apply_pragmas(
    findings: Iterable[Finding], pragmas: Iterable[Pragma]
) -> Iterator[Finding]:
    """Drop findings covered by a matching pragma."""
    pragma_list = list(pragmas)
    suppressed = {
        (p.rule, p.target_line) for p in pragma_list if p.target_line is not None
    }
    file_suppressed = {p.rule for p in pragma_list if p.target_line is None}
    for item in findings:
        if item.rule in file_suppressed:
            continue
        if (item.rule, item.line) not in suppressed:
            yield item
