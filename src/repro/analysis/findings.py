"""Finding and rule primitives shared by the analyzer."""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Protocol

if TYPE_CHECKING:
    from repro.analysis.project import ProjectIndex


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line:col: rule: message`` — the one-line report format."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def as_dict(self) -> dict[str, object]:
        """Plain-dict rendering (JSON output mode)."""
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class ModuleInfo:
    """One parsed source file, ready for rules to inspect.

    Attributes
    ----------
    path:
        Path the file was read from (as given on the command line).
    tree:
        The parsed ``ast`` module.
    source_lines:
        The raw source split into lines (1-indexed via ``line - 1``).
    comments:
        Mapping of line number to the comment text on that line
        (including the ``#``), extracted with :mod:`tokenize` so
        strings containing ``#`` are not mistaken for comments.
    """

    path: Path
    tree: ast.Module
    source_lines: tuple[str, ...]
    comments: dict[int, str]

    def has_adjacent_comment(self, line: int) -> bool:
        """Whether ``line`` or the line above carries a comment.

        Rules that demand a *written justification* (e.g. silencing
        ``np.errstate``) accept any comment on the flagged line or
        immediately above it.
        """
        return line in self.comments or (line - 1) in self.comments


class Rule(Protocol):
    """A single named check over one module."""

    name: str
    description: str

    def check(self, module: ModuleInfo, project: "ProjectIndex") -> Iterator[Finding]:
        """Yield findings for ``module``."""
        ...


def finding(
    module: ModuleInfo, node: ast.AST, rule: str, message: str
) -> Finding:
    """Build a :class:`Finding` anchored at an AST node."""
    return Finding(
        path=str(module.path),
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        rule=rule,
        message=message,
    )


def dotted_name(node: ast.AST) -> str | None:
    """Render an ``a.b.c`` attribute chain, or ``None`` if not a plain chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
