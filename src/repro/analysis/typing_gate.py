"""The strict-typing gate: ``mypy --strict`` over ``src/repro``.

The analyzer's AST rules catch project-specific invariants; the typing
gate catches the general class (wrong argument order, ``None`` leaking
into arithmetic, mismatched array/scalar returns).  ``repro`` ships a
``py.typed`` marker and is expected to pass ``mypy --strict`` with the
configuration in ``pyproject.toml``.

mypy is an optional tool dependency (the ``test`` extra).  When it is
not importable the gate reports *skipped* rather than failing, so the
AST analyzer remains usable in minimal environments; CI always
installs mypy, so the gate is enforced where it matters.
"""

from __future__ import annotations

import dataclasses
import importlib.util
import subprocess
import sys
from typing import Sequence


@dataclasses.dataclass(frozen=True)
class TypingGateResult:
    """Outcome of one typing-gate run."""

    status: str  # "passed" | "failed" | "skipped"
    output: str

    @property
    def ok(self) -> bool:
        """Whether the gate does not block (passed or tool unavailable)."""
        return self.status != "failed"


def mypy_available() -> bool:
    """Whether mypy can be imported in this environment."""
    return importlib.util.find_spec("mypy") is not None


def run_typing_gate(
    targets: Sequence[str] = (), *, strict: bool = False
) -> TypingGateResult:
    """Run mypy; skip gracefully when not installed.

    With no ``targets``, mypy checks the packages configured in
    ``pyproject.toml`` (``[tool.mypy] packages = ["repro"]``), whose
    ``strict = true`` plus documented relaxations are the project
    contract.  Pass ``strict=True`` only to force the CLI ``--strict``
    flag on top of (overriding) the configuration.
    """
    if not mypy_available():
        return TypingGateResult(
            status="skipped",
            output="mypy is not installed; install the 'test' extra to run the typing gate",
        )
    command = [sys.executable, "-m", "mypy"]
    if strict:
        command.append("--strict")
    command.extend(targets)
    proc = subprocess.run(command, capture_output=True, text=True, check=False)
    status = "passed" if proc.returncode == 0 else "failed"
    return TypingGateResult(status=status, output=proc.stdout + proc.stderr)
