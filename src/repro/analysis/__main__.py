"""CLI: ``python -m repro.analysis [paths...]``.

Exit status is 1 when findings survive suppression (0 under
``--warn-only``), so the command slots directly into CI.  ``--typing``
additionally runs the mypy strict gate and fails on type errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import Sequence

from repro.analysis.engine import analyze_paths
from repro.analysis.rules import ALL_RULES
from repro.analysis.typing_gate import run_typing_gate


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific static analysis (see docs/STATIC_ANALYSIS.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report findings but exit 0 (burn-down mode)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--typing",
        action="store_true",
        help="also run the strict mypy typing gate (pyproject [tool.mypy] config)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.name:24s} {rule.description}")
        return 0

    rules = args.select.split(",") if args.select else None
    try:
        findings = analyze_paths(args.paths, rules=rules)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps([f.as_dict() for f in findings], indent=2))
    else:
        for item in findings:
            print(item.render())
        if findings:
            by_rule = Counter(item.rule for item in findings)
            summary = ", ".join(f"{rule}: {n}" for rule, n in sorted(by_rule.items()))
            print(f"\n{len(findings)} finding(s) ({summary})", file=sys.stderr)
        else:
            print("analysis clean: 0 findings", file=sys.stderr)

    exit_code = 0
    if findings and not args.warn_only:
        exit_code = 1

    if args.typing:
        gate = run_typing_gate()
        print(f"typing gate: {gate.status}", file=sys.stderr)
        if gate.output.strip():
            print(gate.output.rstrip(), file=sys.stderr)
        if gate.status == "failed" and not args.warn_only:
            exit_code = 1

    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
