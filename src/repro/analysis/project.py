"""Project-wide index: the estimator class hierarchy across files.

Several rules are *contract* checks on concrete
:class:`~repro.core.base.SelectivityEstimator` subclasses, and those
subclasses are spread over many modules (histograms, kernels, hybrid,
multidim, test fixtures).  A single-file linter cannot know that
``EquiWidthHistogram`` is an estimator — its AST only says it extends
``PiecewiseConstantDensity``.

:class:`ProjectIndex` therefore makes two passes: pass one collects
every class definition and its base names (by final identifier, so
``base.DensityEstimator`` and ``DensityEstimator`` both count); pass
two computes the transitive closure seeded by the abstract roots
``SelectivityEstimator`` / ``DensityEstimator``.  Rules then ask
``project.is_estimator_class(node)`` and
``project.is_abstract(node)``.

Name-based resolution is deliberate: it needs no imports resolved and
works on fixture snippets in tests, at the cost of treating any class
*named* like a base as one — acceptable for a project-specific lint.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import ModuleInfo, dotted_name

#: Abstract roots of the estimator hierarchy (repro.core.base).
ESTIMATOR_ROOTS = frozenset({"SelectivityEstimator", "DensityEstimator"})

#: Decorator names that mark a method abstract.
_ABSTRACT_DECORATORS = frozenset({"abstractmethod", "abstractproperty"})


def _base_names(node: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in node.bases:
        dotted = dotted_name(base)
        if dotted is not None:
            names.add(dotted.rsplit(".", 1)[-1])
    return names


def _has_abstract_member(node: ast.ClassDef) -> bool:
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in item.decorator_list:
                dotted = dotted_name(decorator)
                if dotted is not None and dotted.rsplit(".", 1)[-1] in _ABSTRACT_DECORATORS:
                    return True
    return False


class ProjectIndex:
    """Class-hierarchy facts shared by all rules during one run."""

    def __init__(self, modules: Iterable[ModuleInfo]) -> None:
        bases_of: dict[str, set[str]] = {}
        self._abstract: set[str] = set()
        for module in modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                bases_of.setdefault(node.name, set()).update(_base_names(node))
                if _has_abstract_member(node) or "ABC" in _base_names(node):
                    self._abstract.add(node.name)
        # Transitive closure from the roots: a class is an estimator if
        # any base (by name) is one.  Iterate to a fixed point — the
        # hierarchy is shallow, so this converges in a few sweeps.
        estimators = set(ESTIMATOR_ROOTS)
        changed = True
        while changed:
            changed = False
            for name, bases in bases_of.items():
                if name not in estimators and bases & estimators:
                    estimators.add(name)
                    changed = True
        self._estimators = estimators

    def is_estimator_class(self, node: ast.ClassDef) -> bool:
        """Whether ``node`` is in the estimator hierarchy."""
        return node.name in self._estimators or bool(
            _base_names(node) & self._estimators
        )

    def is_abstract(self, node: ast.ClassDef) -> bool:
        """Whether ``node`` declares abstract members (contract checks skip it)."""
        return node.name in self._abstract or _has_abstract_member(node)

    @property
    def estimator_class_names(self) -> frozenset[str]:
        """All known estimator class names (roots included)."""
        return frozenset(self._estimators)
