"""The analysis engine: file discovery, parsing, rule dispatch.

Running an analysis is three steps:

1. **collect** — walk the given paths for ``*.py`` files and parse
   each into a :class:`~repro.analysis.findings.ModuleInfo` (AST plus
   tokenize-extracted comments for pragma/justification checks).
2. **index** — build the cross-file :class:`~repro.analysis.project.ProjectIndex`
   (estimator hierarchy) over *all* collected modules, so contract
   rules see subclasses wherever they live.
3. **lint** — run every selected rule over every module, apply
   suppression pragmas, and report malformed pragmas as findings of
   the synthetic ``pragma`` rule.

Files that fail to parse are reported as ``parse-error`` findings
instead of crashing the run: an analyzer that dies on the first broken
file is useless in CI.
"""

from __future__ import annotations

import ast
import io
import tokenize
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding, ModuleInfo, Rule
from repro.analysis.pragmas import PRAGMA_RULE, apply_pragmas, parse_pragmas
from repro.analysis.project import ProjectIndex
from repro.analysis.rules import ALL_RULES, RULES_BY_NAME

PARSE_ERROR_RULE = "parse-error"

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules", "build", "dist"})


def discover_files(paths: Sequence[Path | str]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS & set(candidate.parts):
                    seen.setdefault(candidate, None)
        elif path.suffix == ".py":
            seen.setdefault(path, None)
    return list(seen)


def _extract_comments(source: str) -> dict[int, str]:
    comments: dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError):  # half-written file: lint what parsed
        pass
    return comments


def load_module(path: Path) -> ModuleInfo | Finding:
    """Parse one file; a syntax error becomes a ``parse-error`` finding."""
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        return Finding(
            path=str(path),
            line=int(line),
            col=1,
            rule=PARSE_ERROR_RULE,
            message=f"cannot analyze file: {exc}",
        )
    return ModuleInfo(
        path=path,
        tree=tree,
        source_lines=tuple(source.splitlines()),
        comments=_extract_comments(source),
    )


def select_rules(names: Iterable[str] | None) -> tuple[Rule, ...]:
    """Resolve a rule-name selection (``None`` means every rule)."""
    if names is None:
        return ALL_RULES
    selected: list[Rule] = []
    for name in names:
        if name not in RULES_BY_NAME:
            raise KeyError(
                f"unknown rule {name!r}; available: {', '.join(sorted(RULES_BY_NAME))}"
            )
        selected.append(RULES_BY_NAME[name])
    return tuple(selected)


def analyze_paths(
    paths: Sequence[Path | str],
    *,
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Run the analyzer over ``paths`` and return all surviving findings."""
    files = discover_files(paths)
    modules: list[ModuleInfo] = []
    findings: list[Finding] = []
    for path in files:
        loaded = load_module(path)
        if isinstance(loaded, Finding):
            findings.append(loaded)
        else:
            modules.append(loaded)
    findings.extend(analyze_modules(modules, rules=rules))
    return sorted(findings)


def analyze_modules(
    modules: Sequence[ModuleInfo],
    *,
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Run rules over pre-parsed modules (the testable core)."""
    active = select_rules(rules)
    known_rule_names = set(RULES_BY_NAME) | {PRAGMA_RULE, PARSE_ERROR_RULE}
    project = ProjectIndex(modules)
    findings: list[Finding] = []
    for module in modules:
        pragmas, pragma_problems = parse_pragmas(module, known_rule_names)
        findings.extend(pragma_problems)
        raw: list[Finding] = []
        for rule in active:
            raw.extend(rule.check(module, project))
        findings.extend(apply_pragmas(raw, pragmas))
    return sorted(findings)


def analyze_source(
    source: str,
    *,
    path: str = "<snippet>",
    rules: Iterable[str] | None = None,
    context: Sequence[str] = (),
) -> list[Finding]:
    """Analyze a source snippet (the fixture-test entry point).

    ``context`` holds additional snippets indexed for the class
    hierarchy (e.g. a stub ``class SelectivityEstimator``) but not
    themselves linted.
    """
    module = load_module_from_source(source, path)
    if isinstance(module, Finding):
        return [module]
    extras: list[ModuleInfo] = []
    for i, snippet in enumerate(context):
        loaded = load_module_from_source(snippet, f"<context-{i}>")
        if isinstance(loaded, ModuleInfo):
            extras.append(loaded)
    active = select_rules(rules)
    known_rule_names = set(RULES_BY_NAME) | {PRAGMA_RULE, PARSE_ERROR_RULE}
    project = ProjectIndex([module, *extras])
    pragmas, pragma_problems = parse_pragmas(module, known_rule_names)
    raw: list[Finding] = []
    for rule in active:
        raw.extend(rule.check(module, project))
    return sorted([*pragma_problems, *apply_pragmas(raw, pragmas)])


def load_module_from_source(source: str, path: str) -> ModuleInfo | Finding:
    """Parse in-memory source into a :class:`ModuleInfo`."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return Finding(
            path=path,
            line=int(exc.lineno or 1),
            col=1,
            rule=PARSE_ERROR_RULE,
            message=f"cannot analyze file: {exc}",
        )
    return ModuleInfo(
        path=Path(path),
        tree=tree,
        source_lines=tuple(source.splitlines()),
        comments=_extract_comments(source),
    )
