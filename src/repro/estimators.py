"""One-stop factories for every estimator in the paper.

The core classes take explicit smoothing parameters; these factories
wire in the paper's default selection rules so a user can build any
estimator from just a sample and a domain::

    est = estimators.kernel(sample, domain)            # boundary kernels + NS
    est = estimators.kernel(sample, domain, bandwidth="plug-in")
    est = estimators.equi_width(sample, domain)        # NS bin count
    est = estimators.hybrid(sample, domain)

String smoothing parameters select a rule (``"normal-scale"`` or
``"plug-in"``); numbers are used verbatim.
"""

from __future__ import annotations

import numpy as np

from repro.bandwidth.normal_scale import histogram_bin_count, kernel_bandwidth
from repro.bandwidth.plugin import plugin_bandwidth, plugin_bin_count
from repro.bandwidth.scale import clamp_bandwidth
from repro.core.base import InvalidSampleError, SelectivityEstimator
from repro.core.histogram import (
    AverageShiftedHistogram,
    EndBiasedHistogram,
    EquiDepthHistogram,
    EquiWidthHistogram,
    MaxDiffHistogram,
    UniformEstimator,
    VOptimalHistogram,
    WaveletHistogram,
)
from repro.core.hybrid import HybridEstimator
from repro.core.kernel import make_kernel_estimator
from repro.core.kernel.functions import EPANECHNIKOV, KernelFunction
from repro.core.sampling import SamplingEstimator
from repro.data.domain import Interval

#: Rules accepted wherever a smoothing parameter may be a string.
RULES = ("normal-scale", "plug-in")


def _resolve_bins(bins: "int | str", sample: np.ndarray, domain: Interval) -> int:
    if isinstance(bins, str):
        if bins == "normal-scale":
            return histogram_bin_count(sample, domain)
        if bins == "plug-in":
            return plugin_bin_count(sample, domain)
        raise InvalidSampleError(f"unknown bin rule {bins!r}; expected one of {RULES}")
    if bins < 1:
        raise InvalidSampleError(f"need at least one bin, got {bins}")
    return int(bins)


def _resolve_bandwidth(
    bandwidth: "float | str",
    sample: np.ndarray,
    domain: Interval | None,
    kernel_function: "KernelFunction | str",
) -> float:
    if isinstance(bandwidth, str):
        if bandwidth == "normal-scale":
            return kernel_bandwidth(sample, kernel_function)
        if bandwidth == "plug-in":
            return plugin_bandwidth(sample, kernel=kernel_function, domain=domain)
        raise InvalidSampleError(
            f"unknown bandwidth rule {bandwidth!r}; expected one of {RULES}"
        )
    return float(bandwidth)


def sampling(sample: np.ndarray, domain: Interval | None = None) -> SamplingEstimator:
    """Pure sampling estimator."""
    return SamplingEstimator(sample, domain)


def uniform(domain: Interval) -> UniformEstimator:
    """System R's uniform-assumption estimator."""
    return UniformEstimator(domain)


def equi_width(
    sample: np.ndarray,
    domain: Interval,
    bins: "int | str" = "normal-scale",
) -> EquiWidthHistogram:
    """Equi-width histogram; ``bins`` may be a count or a rule name."""
    return EquiWidthHistogram(sample, domain, _resolve_bins(bins, sample, domain))


def equi_depth(
    sample: np.ndarray,
    domain: Interval,
    bins: "int | str" = "normal-scale",
) -> EquiDepthHistogram:
    """Equi-depth histogram.

    No bin-count theory exists for equi-depth histograms; the paper
    observes the equi-width rules carry over reasonably (§5.2.4), so
    the same rules are accepted here.
    """
    return EquiDepthHistogram(sample, _resolve_bins(bins, sample, domain), domain)


def max_diff(
    sample: np.ndarray,
    domain: Interval,
    bins: "int | str" = "normal-scale",
) -> MaxDiffHistogram:
    """Max-diff histogram (same bin-count convention as equi-depth)."""
    return MaxDiffHistogram(sample, _resolve_bins(bins, sample, domain), domain)


def ash(
    sample: np.ndarray,
    domain: Interval,
    bins: "int | str" = "normal-scale",
    shifts: int = 10,
) -> AverageShiftedHistogram:
    """Average shifted histogram (ten shifts, as in the paper)."""
    return AverageShiftedHistogram(
        sample, domain, _resolve_bins(bins, sample, domain), shifts=shifts
    )


def v_optimal(
    sample: np.ndarray,
    domain: Interval,
    bins: "int | str" = "normal-scale",
) -> VOptimalHistogram:
    """V-optimal histogram (SSE-minimizing boundaries, refs [2]/[7])."""
    return VOptimalHistogram(sample, domain, _resolve_bins(bins, sample, domain))


def wavelet(
    sample: np.ndarray,
    domain: Interval,
    coefficients: int = 32,
) -> WaveletHistogram:
    """Haar-wavelet compressed estimator (ref [4])."""
    return WaveletHistogram(sample, domain, coefficients)


def end_biased(
    sample: np.ndarray,
    domain: Interval,
    top: int = 16,
) -> EndBiasedHistogram:
    """End-biased histogram: exact top-``top`` values + uniform rest."""
    return EndBiasedHistogram(sample, domain, top)


def kernel(
    sample: np.ndarray,
    domain: Interval | None = None,
    bandwidth: "float | str" = "normal-scale",
    *,
    boundary: str | None = None,
    kernel_function: "KernelFunction | str" = EPANECHNIKOV,
) -> SelectivityEstimator:
    """Kernel selectivity estimator.

    ``boundary`` defaults to Simonoff–Dong boundary kernels when a
    domain is available and to no treatment otherwise.  Bandwidths are
    clamped so the two boundary regions never overlap.
    """
    if boundary is None:
        boundary = "kernel" if domain is not None else "none"
    h = _resolve_bandwidth(bandwidth, sample, domain, kernel_function)
    if domain is not None and boundary != "none":
        h = clamp_bandwidth(h, domain.width)
    return make_kernel_estimator(
        sample, h, domain, boundary=boundary, kernel=kernel_function
    )


def hybrid(
    sample: np.ndarray,
    domain: Interval,
    **kwargs: object,
) -> HybridEstimator:
    """The paper's hybrid histogram-kernel estimator."""
    return HybridEstimator(sample, domain, **kwargs)


#: Factories for the paper's Fig. 12 line-up, keyed by the labels used
#: in the figure.
PAPER_LINEUP = {
    "EWH": equi_width,
    "Kernel": kernel,
    "Hybrid": hybrid,
    "ASH": ash,
}
