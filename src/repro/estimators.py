"""One-stop factories for every estimator in the paper.

The core classes take explicit smoothing parameters; these factories
wire in the paper's default selection rules so a user can build any
estimator from just a sample and a domain::

    est = estimators.kernel(sample, domain)            # boundary kernels + NS
    est = estimators.kernel(sample, domain, bandwidth="plug-in")
    est = estimators.equi_width(sample, domain)        # NS bin count
    est = estimators.hybrid(sample, domain)

String smoothing parameters select a rule (``"normal-scale"`` or
``"plug-in"``); numbers are used verbatim.

Every factory also accepts a :class:`repro.core.summary.FrozenSummary`
in place of the raw sample array (the domain then defaults to the
summary's declared domain), and :func:`from_summary` builds any family
by name from a frozen summary — the incremental-ANALYZE path in
``repro.db.catalog`` goes through it.  The raw-array path is the thin
adapter: lifting an array with
:meth:`~repro.core.summary.FrozenSummary.from_sample` and building
from the result is bit-identical to passing the array directly.
"""

from __future__ import annotations

import numpy as np

from repro.bandwidth.normal_scale import histogram_bin_count, kernel_bandwidth
from repro.bandwidth.plugin import plugin_bandwidth, plugin_bin_count
from repro.bandwidth.scale import clamp_bandwidth
from repro.core.base import InvalidSampleError, SelectivityEstimator
from repro.core.histogram import (
    AverageShiftedHistogram,
    EndBiasedHistogram,
    EquiDepthHistogram,
    EquiWidthHistogram,
    MaxDiffHistogram,
    UniformEstimator,
    VOptimalHistogram,
    WaveletHistogram,
)
from repro.core.hybrid import HybridEstimator
from repro.core.kernel import make_kernel_estimator
from repro.core.kernel.functions import EPANECHNIKOV, KernelFunction
from repro.core.sampling import SamplingEstimator
from repro.core.summary import FrozenSummary
from repro.data.domain import Interval

#: Rules accepted wherever a smoothing parameter may be a string.
RULES = ("normal-scale", "plug-in")


def _coerce(
    sample: "np.ndarray | FrozenSummary",
    domain: Interval | None,
    *,
    require_domain: bool = True,
) -> "tuple[np.ndarray, Interval | None]":
    """Unwrap a frozen summary into (sample, domain).

    Raw arrays pass through untouched; a :class:`FrozenSummary`
    contributes its expanded reservoir sample and, when the caller
    didn't pass one, its declared domain.
    """
    if isinstance(sample, FrozenSummary):
        return sample.sample, (domain if domain is not None else sample.domain)
    if require_domain and domain is None:
        raise InvalidSampleError(
            "a domain is required when building from a raw sample array"
        )
    return sample, domain


def _resolve_bins(bins: "int | str", sample: np.ndarray, domain: Interval) -> int:
    if isinstance(bins, str):
        if bins == "normal-scale":
            return histogram_bin_count(sample, domain)
        if bins == "plug-in":
            return plugin_bin_count(sample, domain)
        raise InvalidSampleError(f"unknown bin rule {bins!r}; expected one of {RULES}")
    if bins < 1:
        raise InvalidSampleError(f"need at least one bin, got {bins}")
    return int(bins)


def _resolve_bandwidth(
    bandwidth: "float | str",
    sample: np.ndarray,
    domain: Interval | None,
    kernel_function: "KernelFunction | str",
) -> float:
    if isinstance(bandwidth, str):
        if bandwidth == "normal-scale":
            return kernel_bandwidth(sample, kernel_function)
        if bandwidth == "plug-in":
            return plugin_bandwidth(sample, kernel=kernel_function, domain=domain)
        raise InvalidSampleError(
            f"unknown bandwidth rule {bandwidth!r}; expected one of {RULES}"
        )
    return float(bandwidth)


def sampling(
    sample: "np.ndarray | FrozenSummary", domain: Interval | None = None
) -> SamplingEstimator:
    """Pure sampling estimator."""
    sample, domain = _coerce(sample, domain, require_domain=False)
    return SamplingEstimator(sample, domain)


def uniform(domain: Interval) -> UniformEstimator:
    """System R's uniform-assumption estimator."""
    return UniformEstimator(domain)


def equi_width(
    sample: "np.ndarray | FrozenSummary",
    domain: Interval | None = None,
    bins: "int | str" = "normal-scale",
) -> EquiWidthHistogram:
    """Equi-width histogram; ``bins`` may be a count or a rule name."""
    sample, domain = _coerce(sample, domain)
    return EquiWidthHistogram(sample, domain, _resolve_bins(bins, sample, domain))


def equi_depth(
    sample: "np.ndarray | FrozenSummary",
    domain: Interval | None = None,
    bins: "int | str" = "normal-scale",
) -> EquiDepthHistogram:
    """Equi-depth histogram.

    No bin-count theory exists for equi-depth histograms; the paper
    observes the equi-width rules carry over reasonably (§5.2.4), so
    the same rules are accepted here.
    """
    sample, domain = _coerce(sample, domain)
    return EquiDepthHistogram(sample, _resolve_bins(bins, sample, domain), domain)


def max_diff(
    sample: "np.ndarray | FrozenSummary",
    domain: Interval | None = None,
    bins: "int | str" = "normal-scale",
) -> MaxDiffHistogram:
    """Max-diff histogram (same bin-count convention as equi-depth)."""
    sample, domain = _coerce(sample, domain)
    return MaxDiffHistogram(sample, _resolve_bins(bins, sample, domain), domain)


def ash(
    sample: "np.ndarray | FrozenSummary",
    domain: Interval | None = None,
    bins: "int | str" = "normal-scale",
    shifts: int = 10,
) -> AverageShiftedHistogram:
    """Average shifted histogram (ten shifts, as in the paper)."""
    sample, domain = _coerce(sample, domain)
    return AverageShiftedHistogram(
        sample, domain, _resolve_bins(bins, sample, domain), shifts=shifts
    )


def v_optimal(
    sample: "np.ndarray | FrozenSummary",
    domain: Interval | None = None,
    bins: "int | str" = "normal-scale",
) -> VOptimalHistogram:
    """V-optimal histogram (SSE-minimizing boundaries, refs [2]/[7])."""
    sample, domain = _coerce(sample, domain)
    return VOptimalHistogram(sample, domain, _resolve_bins(bins, sample, domain))


def wavelet(
    sample: "np.ndarray | FrozenSummary",
    domain: Interval | None = None,
    coefficients: int = 32,
) -> WaveletHistogram:
    """Haar-wavelet compressed estimator (ref [4])."""
    sample, domain = _coerce(sample, domain)
    return WaveletHistogram(sample, domain, coefficients)


def end_biased(
    sample: "np.ndarray | FrozenSummary",
    domain: Interval | None = None,
    top: int = 16,
) -> EndBiasedHistogram:
    """End-biased histogram: exact top-``top`` values + uniform rest."""
    sample, domain = _coerce(sample, domain)
    return EndBiasedHistogram(sample, domain, top)


def kernel(
    sample: "np.ndarray | FrozenSummary",
    domain: Interval | None = None,
    bandwidth: "float | str" = "normal-scale",
    *,
    boundary: str | None = None,
    kernel_function: "KernelFunction | str" = EPANECHNIKOV,
) -> SelectivityEstimator:
    """Kernel selectivity estimator.

    ``boundary`` defaults to Simonoff–Dong boundary kernels when a
    domain is available and to no treatment otherwise.  Bandwidths are
    clamped so the two boundary regions never overlap.
    """
    sample, domain = _coerce(sample, domain, require_domain=False)
    if boundary is None:
        boundary = "kernel" if domain is not None else "none"
    h = _resolve_bandwidth(bandwidth, sample, domain, kernel_function)
    if domain is not None and boundary != "none":
        h = clamp_bandwidth(h, domain.width)
    return make_kernel_estimator(
        sample, h, domain, boundary=boundary, kernel=kernel_function
    )


def hybrid(
    sample: "np.ndarray | FrozenSummary",
    domain: Interval | None = None,
    **kwargs: object,
) -> HybridEstimator:
    """The paper's hybrid histogram-kernel estimator."""
    sample, domain = _coerce(sample, domain)
    return HybridEstimator(sample, domain, **kwargs)


#: Factories for the paper's Fig. 12 line-up, keyed by the labels used
#: in the figure.
PAPER_LINEUP = {
    "EWH": equi_width,
    "Kernel": kernel,
    "Hybrid": hybrid,
    "ASH": ash,
}

#: Families buildable from a frozen summary, by catalog family name.
SUMMARY_FAMILIES = {
    "uniform": lambda summary, **kw: uniform(summary.domain),
    "sampling": sampling,
    "equi-width": equi_width,
    "equi-depth": equi_depth,
    "max-diff": max_diff,
    "ash": ash,
    "v-optimal": v_optimal,
    "wavelet": wavelet,
    "end-biased": end_biased,
    "kernel": kernel,
    "hybrid": hybrid,
}


def from_summary(
    family: str, summary: FrozenSummary, **kwargs: object
) -> SelectivityEstimator:
    """Build any named estimator family from a frozen column summary.

    The incremental-ANALYZE path (``repro.db.catalog``) rebuilds
    estimators through this entry after merging delta summaries, so a
    refresh costs O(reservoir) instead of O(table).
    """
    if family not in SUMMARY_FAMILIES:
        raise InvalidSampleError(
            f"unknown estimator family {family!r}; "
            f"available: {', '.join(SUMMARY_FAMILIES)}"
        )
    return SUMMARY_FAMILIES[family](summary, **kwargs)
